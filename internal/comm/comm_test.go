package comm_test

import (
	"sync"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/race"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

func world(t *testing.T, p int) []*comm.Communicator {
	t.Helper()
	w := transport.NewInprocWorld(p)
	t.Cleanup(func() { w[0].Close() })
	return w
}

func TestRankAndSize(t *testing.T) {
	w := world(t, 4)
	for r, c := range w {
		if c.Rank() != r {
			t.Fatalf("rank %d reported as %d", r, c.Rank())
		}
		if c.Size() != 4 {
			t.Fatalf("size = %d, want 4", c.Size())
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := world(t, 2)
	go func() {
		_ = w[0].Send(1, 7, tensor.Vector{1, 2, 3})
	}()
	data, st, err := w[1].Recv(0, 7)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !data.Equal(tensor.Vector{1, 2, 3}) {
		t.Fatalf("data = %v", data)
	}
	if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
		t.Fatalf("status = %+v", st)
	}
}

func TestSendCopyRetainsCallerBuffer(t *testing.T) {
	w := world(t, 2)
	buf := tensor.Vector{1, 2, 3}
	if err := w[0].SendCopy(1, 0, buf); err != nil {
		t.Fatalf("SendCopy: %v", err)
	}
	buf[0] = 99 // caller keeps ownership; receiver must still see the original
	data, _, err := w[1].Recv(0, 0)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if data[0] != 1 {
		t.Fatalf("SendCopy did not snapshot payload: got %v", data)
	}
	comm.Release(data)
}

func TestSendTransfersOwnershipZeroCopyInproc(t *testing.T) {
	w := world(t, 2)
	// On the in-process fast path the receiver must get the sender's backing
	// array itself: ownership transfer, exactly zero copies and zero clones.
	buf := tensor.GetVector(64)
	buf.Fill(7)
	if err := w[0].Send(1, 0, buf); err != nil {
		t.Fatalf("Send: %v", err)
	}
	data, _, err := w[1].Recv(0, 0)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if &data[0] != &buf[0] {
		t.Fatalf("inproc Send copied the payload: receiver got a different backing array")
	}
	comm.Release(data)
}

func TestSendRecvBorrowsOutgoingBuffer(t *testing.T) {
	w := world(t, 2)
	var wg sync.WaitGroup
	bufs := [2]tensor.Vector{{0, 0}, {1, 1}}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			peer := 1 - r
			data, _, err := w[r].SendRecv(peer, 0, bufs[r], peer, 0)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			// The outgoing buffer is borrowed: still intact after the call.
			if bufs[r][0] != float64(r) {
				t.Errorf("rank %d: outgoing buffer clobbered: %v", r, bufs[r])
			}
			if data[0] != float64(peer) {
				t.Errorf("rank %d: got %v", r, data)
			}
			comm.Release(data)
		}(r)
	}
	wg.Wait()
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	w := world(t, 3)
	if err := w[2].Send(0, 42, tensor.Vector{5}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	data, st, err := w[0].Recv(comm.AnySource, comm.AnyTag)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if st.Source != 2 || st.Tag != 42 || data[0] != 5 {
		t.Fatalf("got %v %+v", data, st)
	}
}

func TestRecvTagFiltering(t *testing.T) {
	w := world(t, 2)
	// Send tag 1 first, then tag 2. A receive for tag 2 must skip tag 1.
	if err := w[0].Send(1, 1, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if err := w[0].Send(1, 2, tensor.Vector{2}); err != nil {
		t.Fatal(err)
	}
	// Allow both to be queued.
	deadline := time.Now().Add(time.Second)
	for w[1].Pending() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	data, _, err := w[1].Recv(0, 2)
	if err != nil || data[0] != 2 {
		t.Fatalf("tag-2 recv got %v err=%v", data, err)
	}
	data, _, err = w[1].Recv(0, 1)
	if err != nil || data[0] != 1 {
		t.Fatalf("tag-1 recv got %v err=%v", data, err)
	}
}

func TestRecvFIFOPerSourceTag(t *testing.T) {
	w := world(t, 2)
	for i := 0; i < 50; i++ {
		if err := w[0].Send(1, 9, tensor.Vector{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		data, _, err := w[1].Recv(0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != float64(i) {
			t.Fatalf("message %d out of order: got %v", i, data[0])
		}
	}
}

func TestTryRecv(t *testing.T) {
	w := world(t, 2)
	if _, _, ok := w[1].TryRecv(0, 3); ok {
		t.Fatalf("TryRecv returned a message before any send")
	}
	if err := w[0].Send(1, 3, tensor.Vector{8}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		if data, st, ok := w[1].TryRecv(0, 3); ok {
			if data[0] != 8 || st.Tag != 3 {
				t.Fatalf("TryRecv got %v %+v", data, st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("TryRecv never observed the message")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIsendIrecv(t *testing.T) {
	w := world(t, 2)
	rreq := w[1].Irecv(0, 11)
	sreq := w[0].Isend(1, 11, tensor.Vector{3, 4})
	if err := comm.WaitAll(sreq, rreq); err != nil {
		t.Fatalf("WaitAll: %v", err)
	}
	data, st, err := rreq.Wait()
	if err != nil || !data.Equal(tensor.Vector{3, 4}) || st.Source != 0 {
		t.Fatalf("Irecv got %v %+v err=%v", data, st, err)
	}
}

func TestRequestTest(t *testing.T) {
	w := world(t, 2)
	req := w[1].Irecv(0, 5)
	if req.Test() {
		t.Fatalf("request complete before matching send")
	}
	if err := w[0].Send(1, 5, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for !req.Test() {
		if time.Now().After(deadline) {
			t.Fatalf("request never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSendRecvExchangeNoDeadlock(t *testing.T) {
	w := world(t, 2)
	var wg sync.WaitGroup
	results := make([]tensor.Vector, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			peer := 1 - r
			data, _, err := w[r].SendRecv(peer, 0, tensor.Vector{float64(r)}, peer, 0)
			if err != nil {
				t.Errorf("rank %d SendRecv: %v", r, err)
				return
			}
			results[r] = data
		}(r)
	}
	wg.Wait()
	if results[0] == nil || results[1] == nil {
		t.Fatal("missing results")
	}
	if results[0][0] != 1 || results[1][0] != 0 {
		t.Fatalf("exchange wrong: %v %v", results[0], results[1])
	}
}

// TestSendRecvInprocAllocFree pins down the ownership refactor's headline
// property on the point-to-point layer: a steady-state SendRecv exchange on
// the in-process transport performs zero allocations — no defensive clone on
// the send half (the old Send+Isend path cloned the payload twice), no
// per-exchange goroutine or request, and a pooled receive buffer that is
// recycled by Release.
func TestSendRecvInprocAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	if tensor.LeaseDebugEnabled {
		t.Skip("-tags leasedebug trades the alloc-free guarantee for lease-site tracking")
	}
	w := world(t, 2)
	const n = 1024
	payload := [2]tensor.Vector{tensor.NewVector(n), tensor.NewVector(n)}
	start := [2]chan struct{}{make(chan struct{}), make(chan struct{})}
	done := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			for range start[r] {
				data, _, err := w[r].SendRecv(1-r, 0, payload[r], 1-r, 0)
				if err == nil {
					comm.Release(data)
				}
				done <- err
			}
		}(r)
	}
	defer func() {
		close(start[0])
		close(start[1])
	}()
	round := func() {
		start[0] <- struct{}{}
		start[1] <- struct{}{}
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				t.Fatalf("SendRecv: %v", err)
			}
		}
	}
	for i := 0; i < 32; i++ {
		round() // warm pools and queue capacities
	}
	if avg := testing.AllocsPerRun(100, round); avg > 0 {
		t.Fatalf("steady-state inproc SendRecv allocates %.1f objects per exchange, want 0", avg)
	}
}

// stallEndpoint is a transport whose Send blocks until released, modelling a
// peer stuck on transport backpressure (e.g. a frozen TCP receiver).
type stallEndpoint struct {
	release chan struct{}
	inbox   chan comm.Message
	closed  chan struct{}
}

func newStallEndpoint() *stallEndpoint {
	return &stallEndpoint{release: make(chan struct{}), inbox: make(chan comm.Message, 1), closed: make(chan struct{})}
}

func (s *stallEndpoint) Rank() int { return 0 }
func (s *stallEndpoint) Size() int { return 2 }
func (s *stallEndpoint) Send(dest int, m comm.Message) error {
	<-s.release
	return nil
}
func (s *stallEndpoint) Inbox() <-chan comm.Message { return s.inbox }
func (s *stallEndpoint) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
		close(s.inbox)
	}
	return nil
}

// TestSendRecvCancelUnblocksWhileSendStalled pins the liveness property of the
// cancel-aware exchange: even when the transport send is stuck on a stalled
// peer, a canceled SendRecvCancel must return ErrCanceled instead of hanging
// (the in-flight send is abandoned to the background and the communicator is
// closed afterwards, per the documented contract).
func TestSendRecvCancelUnblocksWhileSendStalled(t *testing.T) {
	ep := newStallEndpoint()
	c := comm.NewCommunicator(ep)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.SendRecvCancel(1, 0, tensor.Vector{1}, 1, 0, cancel)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if err != comm.ErrCanceled {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SendRecvCancel hung although canceled: stalled send blocks the cancel path")
	}
	close(ep.release) // let the abandoned background send drain
	c.Close()
}

// TestSendRecvCancelUnblocksWhenRecvSatisfiedButSendStalled covers the other
// half of the liveness guarantee: the matching message is already queued (the
// receive succeeds immediately) but the send is stuck on a stalled peer. The
// wait for the send must honor the cancel channel.
func TestSendRecvCancelUnblocksWhenRecvSatisfiedButSendStalled(t *testing.T) {
	ep := newStallEndpoint()
	ep.inbox <- comm.Message{Source: 1, Tag: 0, Data: tensor.Vector{9}} // recv half satisfied up front
	c := comm.NewCommunicator(ep)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.SendRecvCancel(1, 0, tensor.Vector{1}, 1, 0, cancel)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if err != comm.ErrCanceled {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SendRecvCancel hung in the send wait although canceled")
	}
	close(ep.release)
	c.Close()
}

func TestSendInvalidPeer(t *testing.T) {
	w := world(t, 2)
	if err := w[0].Send(5, 0, tensor.Vector{1}); err == nil {
		t.Fatalf("expected error for out-of-range peer")
	}
	if _, _, err := w[0].Recv(9, 0); err == nil {
		t.Fatalf("expected error for out-of-range source")
	}
}

func TestRecvAfterCloseReturnsError(t *testing.T) {
	w := transport.NewInprocWorld(2)
	done := make(chan error, 1)
	go func() {
		_, _, err := w[1].Recv(0, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w[0].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("expected error from Recv after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Recv did not unblock after close")
	}
}

func TestConcurrentReceiversDistinctTags(t *testing.T) {
	w := world(t, 2)
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _, err := w[1].Recv(0, i)
			errs[i] = err
			if err == nil {
				vals[i] = data[0]
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := w[0].Send(1, i, tensor.Vector{float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("receiver %d: %v", i, errs[i])
		}
		if vals[i] != float64(i*10) {
			t.Fatalf("receiver %d got %v", i, vals[i])
		}
	}
}

func TestRecvCancelReturnsWhenCanceled(t *testing.T) {
	w := world(t, 2)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := w[1].RecvCancel(0, 99, cancel)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if err != comm.ErrCanceled {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvCancel did not return after cancel")
	}
}

func TestRecvCancelDeliversMessageBeforeCancel(t *testing.T) {
	w := world(t, 2)
	cancel := make(chan struct{})
	defer close(cancel)
	if err := w[0].Send(1, 4, tensor.Vector{9}); err != nil {
		t.Fatal(err)
	}
	data, st, err := w[1].RecvCancel(0, 4, cancel)
	if err != nil || data[0] != 9 || st.Tag != 4 {
		t.Fatalf("got %v %+v err=%v", data, st, err)
	}
}

func TestRecvCancelNilCancelBehavesLikeRecv(t *testing.T) {
	w := world(t, 2)
	go func() { _ = w[0].Send(1, 8, tensor.Vector{2}) }()
	data, _, err := w[1].RecvCancel(0, 8, nil)
	if err != nil || data[0] != 2 {
		t.Fatalf("got %v err=%v", data, err)
	}
}

func TestDiscardTagRange(t *testing.T) {
	w := world(t, 2)
	for _, tag := range []int{1, 5, 10, 15, 20} {
		if err := w[0].Send(1, tag, tensor.Vector{float64(tag)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for w[1].Pending() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	removed := w[1].DiscardTagRange(5, 16)
	if removed != 3 {
		t.Fatalf("removed %d messages, want 3", removed)
	}
	if w[1].Pending() != 2 {
		t.Fatalf("pending = %d, want 2", w[1].Pending())
	}
	// Tags outside the range must still be receivable.
	for _, tag := range []int{1, 20} {
		data, _, err := w[1].Recv(0, tag)
		if err != nil || data[0] != float64(tag) {
			t.Fatalf("tag %d: %v %v", tag, data, err)
		}
	}
}

func TestDiscardTagsOnArrival(t *testing.T) {
	w := world(t, 2)
	before := tensor.ReadPoolStats()
	// Queue one message inside the soon-to-be-discarded range and one outside.
	for _, tag := range []int{7, 40} {
		if err := w[0].Send(1, tag, tensor.GetVector(1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for w[1].Pending() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if purged := w[1].DiscardTagsOnArrival(5, 16); purged != 1 {
		t.Fatalf("purged %d already-queued messages, want 1", purged)
	}
	// A message arriving after registration is released at the demux: it
	// never becomes pending and can never match a receive.
	if err := w[0].Send(1, 9, tensor.GetVector(1)); err != nil {
		t.Fatal(err)
	}
	// Sentinel outside the range to order against: once it is receivable the
	// tag-9 frame has certainly been through the demux.
	if err := w[0].Send(1, 40, tensor.GetVector(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		data, _, err := w[1].Recv(0, 40)
		if err != nil {
			t.Fatal(err)
		}
		comm.Release(data)
	}
	if v, _, ok := w[1].TryRecv(0, 9); ok {
		comm.Release(v)
		t.Fatal("message in a registered discard range was delivered")
	}
	if w[1].Pending() != 0 {
		t.Fatalf("pending = %d, want 0", w[1].Pending())
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("discard-on-arrival leaked %d leases", n)
	}
}

func TestManyToOneAnySource(t *testing.T) {
	const p = 8
	w := world(t, p)
	for r := 1; r < p; r++ {
		go func(r int) {
			_ = w[r].Send(0, 1, tensor.Vector{float64(r)})
		}(r)
	}
	seen := make(map[int]bool)
	for i := 0; i < p-1; i++ {
		data, st, err := w[0].Recv(comm.AnySource, 1)
		if err != nil {
			t.Fatal(err)
		}
		if int(data[0]) != st.Source {
			t.Fatalf("payload %v does not match source %d", data, st.Source)
		}
		seen[st.Source] = true
	}
	if len(seen) != p-1 {
		t.Fatalf("received from %d distinct sources, want %d", len(seen), p-1)
	}
}
