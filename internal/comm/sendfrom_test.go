package comm_test

import (
	"testing"

	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// TestSendFromFallbackInproc: over an endpoint with no FillSender, SendFrom
// stages fill(a, b) into a pool lease and sends it owned — the receiver sees
// the combined values and the caller keeps both operands untouched.
func TestSendFromFallbackInproc(t *testing.T) {
	w := world(t, 2)
	a := tensor.Vector{1, 2, 3}
	b := tensor.Vector{10, 20, 30}
	if err := w[0].SendFrom(1, 4, a, b, tensor.AddInto); err != nil {
		t.Fatalf("SendFrom: %v", err)
	}
	data, st, err := w[1].Recv(0, 4)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !data.Equal(tensor.Vector{11, 22, 33}) {
		t.Fatalf("data = %v, want the element-wise sum", data)
	}
	if st.Source != 0 || st.Tag != 4 {
		t.Fatalf("status = %+v", st)
	}
	tensor.PutVector(data)
	if !a.Equal(tensor.Vector{1, 2, 3}) || !b.Equal(tensor.Vector{10, 20, 30}) {
		t.Fatalf("SendFrom mutated its operands: a=%v b=%v", a, b)
	}
}

// TestSendFromShmRing: over the shared-ring transport, SendFrom takes the
// in-place fill path; the contract at the receiver is identical.
func TestSendFromShmRing(t *testing.T) {
	w := transport.NewShmWorld(2)
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	a := tensor.Vector{1, 2, 3}
	b := tensor.Vector{10, 20, 30}
	if err := w[0].SendFrom(1, 4, a, b, tensor.AddInto); err != nil {
		t.Fatalf("SendFrom: %v", err)
	}
	data, st, err := w[1].Recv(0, 4)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !data.Equal(tensor.Vector{11, 22, 33}) {
		t.Fatalf("data = %v, want the element-wise sum", data)
	}
	if st.Source != 0 || st.Tag != 4 {
		t.Fatalf("status = %+v", st)
	}
	tensor.PutVector(data)
	if !a.Equal(tensor.Vector{1, 2, 3}) || !b.Equal(tensor.Vector{10, 20, 30}) {
		t.Fatalf("SendFrom mutated its operands: a=%v b=%v", a, b)
	}
}
