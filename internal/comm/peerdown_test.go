package comm_test

import (
	"errors"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

func TestMarkPeerDownWakesBlockedRecv(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	cause := errors.New("synthetic failure")
	done := make(chan error, 1)
	go func() {
		_, _, err := w[0].Recv(1, 5)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w[0].MarkPeerDown(1, cause)
	select {
	case err := <-done:
		if !errors.Is(err, comm.ErrPeerDown) {
			t.Fatalf("err = %v, want ErrPeerDown", err)
		}
		if !errors.Is(err, cause) {
			t.Fatalf("err = %v does not unwrap to the recorded cause", err)
		}
		var pd *comm.PeerDownError
		if !errors.As(err, &pd) || pd.Rank != 1 {
			t.Fatalf("err = %v, want PeerDownError for rank 1", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on MarkPeerDown")
	}
}

func TestQueuedMessageBeatsDownMarking(t *testing.T) {
	// A payload that arrived before the peer died must still be deliverable.
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	v := tensor.GetVector(1)
	v[0] = 42
	if err := w[1].Send(0, 9, v); err != nil {
		t.Fatalf("send: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // let the demux queue it
	w[0].MarkPeerDown(1, nil)
	got, _, err := w[0].Recv(1, 9)
	if err != nil {
		t.Fatalf("queued message not delivered after marking: %v", err)
	}
	if got[0] != 42 {
		t.Fatalf("payload = %v", got[0])
	}
	comm.Release(got)
	// The next receive fails fast.
	if _, _, err := w[0].Recv(1, 9); !errors.Is(err, comm.ErrPeerDown) {
		t.Fatalf("second recv err = %v, want ErrPeerDown", err)
	}
}

func TestSendToDownPeerFailsFast(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	w[0].MarkPeerDown(1, nil)
	v := tensor.GetVector(4)
	if err := w[0].Send(1, 1, v); !errors.Is(err, comm.ErrPeerDown) {
		t.Fatalf("Send err = %v, want ErrPeerDown", err)
	}
	if err := w[0].SendCopy(1, 1, make(tensor.Vector, 4)); !errors.Is(err, comm.ErrPeerDown) {
		t.Fatalf("SendCopy err = %v, want ErrPeerDown", err)
	}
}

func TestRecvTimeoutMarksPeerDown(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	_, _, err := w[0].RecvTimeout(1, 3, nil, 30*time.Millisecond)
	if !errors.Is(err, comm.ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
	if !errors.Is(err, comm.ErrPeerDeadline) {
		t.Fatalf("err = %v does not carry ErrPeerDeadline as cause", err)
	}
	if !w[0].PeerDown(1) {
		t.Fatal("peer not marked down after deadline")
	}
	if got := w[0].DownPeers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DownPeers = %v, want [1]", got)
	}
}

func TestRecvTimeoutDeliversWithinDeadline(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	go func() {
		time.Sleep(10 * time.Millisecond)
		v := tensor.GetVector(1)
		v[0] = 7
		w[1].Send(0, 3, v)
	}()
	got, _, err := w[0].RecvTimeout(1, 3, nil, 5*time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if got[0] != 7 {
		t.Fatalf("payload = %v", got[0])
	}
	comm.Release(got)
	if w[0].PeerDown(1) {
		t.Fatal("peer marked down although it delivered in time")
	}
}

func TestOnPeerDownReplaysExistingMarkings(t *testing.T) {
	w := transport.NewInprocWorld(3)
	defer w[0].Close()
	w[0].MarkPeerDown(2, nil)
	var seen []int
	w[0].OnPeerDown(func(rank int) { seen = append(seen, rank) })
	if len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("replay = %v, want [2]", seen)
	}
	w[0].MarkPeerDown(1, nil)
	w[0].MarkPeerDown(1, nil) // idempotent: no second notification
	if len(seen) != 2 || seen[1] != 1 {
		t.Fatalf("notifications = %v, want [2 1]", seen)
	}
}

func TestCloseReleasesUnexpectedQueue(t *testing.T) {
	before := tensor.ReadPoolStats()
	w := transport.NewInprocWorld(2)
	// Park messages in rank 0's unexpected queue that no receive ever claims.
	for i := 0; i < 8; i++ {
		if err := w[1].Send(0, 100+i, tensor.GetVectorZero(16)); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for w[0].Pending() < 8 {
		time.Sleep(time.Millisecond)
	}
	w[0].Close()
	w[1].Close()
	after := tensor.ReadPoolStats()
	if n := after.OutstandingSince(before); n != 0 {
		t.Fatalf("close leaked %d pool leases via the unexpected queue%s", n, tensor.FormatLeaseReport())
	}
}

func TestSendRecvTimeoutSurfacesPeerDown(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	data := make(tensor.Vector, 4)
	_, _, err := w[0].SendRecvTimeout(1, 1, data, 1, 1, nil, 30*time.Millisecond)
	if !errors.Is(err, comm.ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
	// With a cancel channel (the cancelable path) the behaviour is the same.
	w2 := transport.NewInprocWorld(2)
	defer w2[0].Close()
	cancel := make(chan struct{})
	defer close(cancel)
	_, _, err = w2[0].SendRecvTimeout(1, 1, data, 1, 1, cancel, 30*time.Millisecond)
	if !errors.Is(err, comm.ErrPeerDown) {
		t.Fatalf("cancelable err = %v, want ErrPeerDown", err)
	}
}
