package comm

// Regression tests for two races on the direct-delivery path (PR 9):
//
//   - dispatchLocked queued a frame without checking c.closed, so a delivery
//     decoded by a transport poll loop racing Close landed in the
//     already-purged unexpected queue and its pool lease leaked forever.
//   - deliverDirect checked the arrival-time discard ranges only before its
//     claim CAS, so a DiscardTagsOnArrival installed between the load and the
//     claim could hand a discarded-tag frame (e.g. a wrapped-epoch straggler)
//     to an armed receiver.
//
// These live in the internal package: the discard-race test needs the
// testHookDirectPreClaim seam to deterministically interleave the
// installation into the historical race window, and both need a stub
// DirectSource endpoint whose deliver function the test can invoke as if it
// were the transport's poll loop.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/tensor"
)

// stubDirectEndpoint is a minimal DirectSource transport: it never produces
// inbox traffic itself, but hands the communicator's deliver sink to the test
// so deliveries can be injected synchronously, exactly as the shm poll loop
// would call it.
type stubDirectEndpoint struct {
	rank, size int
	inbox      chan Message
	deliverFn  func(Message)
	closeOnce  sync.Once
}

func newStubDirectEndpoint(rank, size int) *stubDirectEndpoint {
	return &stubDirectEndpoint{rank: rank, size: size, inbox: make(chan Message)}
}

func (e *stubDirectEndpoint) Rank() int { return e.rank }
func (e *stubDirectEndpoint) Size() int { return e.size }

func (e *stubDirectEndpoint) Send(dest int, m Message) error {
	tensor.PutVector(m.Data) // Send takes ownership on every path
	return nil
}

func (e *stubDirectEndpoint) Inbox() <-chan Message { return e.inbox }

func (e *stubDirectEndpoint) Close() error {
	e.closeOnce.Do(func() { close(e.inbox) })
	return nil
}

func (e *stubDirectEndpoint) SetDeliver(fn func(Message)) { e.deliverFn = fn }

// waitArmed spins until the receiver goroutine has armed the slot.
func waitArmed(t *testing.T, s *directSlot) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.state.Load()&slotPhaseMask != slotArmed {
		if time.Now().After(deadline) {
			t.Fatal("receiver never armed its direct slot")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestChaosDirectCloseRaceReleasesLease pins the close-race fix: a frame the
// transport's poll loop decoded concurrently with Close arrives after the
// unexpected queue has been purged. It must be released back to the pool, not
// queued — nothing can ever match a message queued after the purge, so
// queueing it leaks the lease forever (the pre-fix behavior).
func TestChaosDirectCloseRaceReleasesLease(t *testing.T) {
	ep := newStubDirectEndpoint(0, 2)
	c := NewCommunicator(ep)
	before := tensor.ReadPoolStats()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The poll loop's last frame lands after the purge.
	ep.deliverFn(Message{Source: 1, Tag: 7, Data: tensor.GetVector(32)})
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("delivery racing Close leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("message queued after Close: pending = %d, want 0", got)
	}
}

// TestChaosDirectDiscardRaceInterleavedInstall pins the discard-race fix
// deterministically: the test hook runs DiscardTagsOnArrival inside the
// window between deliverDirect's lock-free range check and its claim CAS —
// the exact interleaving that pre-fix handed the discarded frame to the
// armed receiver. With the post-claim re-check the frame is released and the
// receiver observes only a spurious wake; it must end with ErrCanceled,
// never the dead tag's payload.
func TestChaosDirectDiscardRaceInterleavedInstall(t *testing.T) {
	ep := newStubDirectEndpoint(0, 2)
	c := NewCommunicator(ep)
	defer c.Close()
	const tag = 4242
	before := tensor.ReadPoolStats()

	type result struct {
		data tensor.Vector
		err  error
	}
	cancel := make(chan struct{})
	done := make(chan result, 1)
	go func() {
		data, _, err := c.RecvCancel(1, tag, cancel)
		done <- result{data, err}
	}()
	waitArmed(t, &c.slots[1])

	installed := make(chan struct{})
	testHookDirectPreClaim = func(Message) {
		c.DiscardTagsOnArrival(tag, tag+1)
		close(installed)
	}
	defer func() { testHookDirectPreClaim = nil }()

	ep.deliverFn(Message{Source: 1, Tag: tag, Data: tensor.GetVector(16)})
	<-installed

	// The receiver must not complete with the discarded frame.
	select {
	case r := <-done:
		t.Fatalf("receiver completed with a discarded-tag frame: data=%v err=%v", r.data, r.err)
	case <-time.After(50 * time.Millisecond):
	}
	close(cancel)
	r := <-done
	if !errors.Is(r.err, ErrCanceled) {
		t.Fatalf("receiver finished with err=%v (data=%v), want ErrCanceled", r.err, r.data)
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("discarded delivery leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}

// TestChaosDirectDiscardRaceHammer interleaves direct deliveries, advancing
// arrival-time discard installations, and slot receivers concurrently — run
// under -race in the chaos matrix, it exercises the claim/re-check/sentinel
// protocol from every side. The invariant checked is the one both bugs
// violated: every lease is accounted for, whether a frame was delivered,
// discarded, or purged at Close.
func TestChaosDirectDiscardRaceHammer(t *testing.T) {
	ep := newStubDirectEndpoint(0, 2)
	c := NewCommunicator(ep)
	before := tensor.ReadPoolStats()

	const rounds = 400
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // the poll loop: one frame per round tag, in order
		defer wg.Done()
		for tag := 0; tag < rounds; tag++ {
			ep.deliverFn(Message{Source: 1, Tag: tag, Data: tensor.GetVector(8)})
		}
	}()
	wg.Add(1)
	go func() { // epoch retirement: the blocklist sweeps across the tag space
		defer wg.Done()
		for lo := 0; lo < rounds; lo += 4 {
			c.DiscardTagsOnArrival(lo, lo+4)
		}
	}()

	var recvWG sync.WaitGroup
	recvWG.Add(1)
	go func() { // receivers racing the two above; discarded tags never arrive
		defer recvWG.Done()
		for tag := 0; tag < rounds; tag++ {
			data, _, err := c.RecvCancel(1, tag, stop)
			if err != nil {
				return // canceled at drain time; remaining frames purge at Close
			}
			tensor.PutVector(data)
		}
	}()

	wg.Wait()
	close(stop)
	recvWG.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("hammer leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}
