// Package comm provides the message-passing substrate the collectives are
// built on: ranks, communicators, and tag-matched point-to-point messaging
// with blocking and non-blocking variants.
//
// The design mirrors the small subset of MPI semantics the paper relies on.
// A Communicator wraps a transport Endpoint (see internal/transport for the
// in-process and TCP implementations) and adds MPI-style message matching:
// receives name a (source, tag) pair — either may be a wildcard — and messages
// that arrive before a matching receive is posted are held in an unexpected
// queue, preserving per-(source, tag) FIFO order.
//
// # Buffer ownership
//
// The layer follows an explicit ownership model (DESIGN.md, "Buffer ownership
// & pooling") so the steady-state hot path never touches the allocator:
//
//   - Send and Isend take ownership of the payload: the caller must not read
//     or write the vector after the call. Callers that need to keep using
//     their buffer use SendCopy, which snapshots it into a pool-leased buffer.
//   - Recv, RecvCancel, TryRecv, and SendRecv hand back a leased buffer: the
//     receiver owns it and should release it with Release (or
//     tensor.PutVector) once the payload has been consumed. Forgetting to
//     release only costs a garbage collection; releasing twice, or while a
//     reference is still live, corrupts another lease.
//   - SendRecv borrows its outgoing payload (it snapshots into a pooled
//     buffer internally), so the caller's vector is untouched.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eagersgd/internal/tensor"
)

// Wildcards accepted by Recv and Irecv.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// ErrClosed is returned by operations on a communicator whose transport has
// been shut down.
var ErrClosed = errors.New("comm: communicator closed")

// ErrCanceled is returned by RecvCancel when the cancel channel fires before
// a matching message arrives.
var ErrCanceled = errors.New("comm: receive canceled")

// ErrPeerDown is the sentinel every peer-failure error matches
// (errors.Is(err, ErrPeerDown)). A peer is marked down by the transport (a
// TCP read loop observing the connection die), by a deadline expiring on a
// blocked receive (RecvTimeout), or explicitly via MarkPeerDown. Down status
// is sticky: once marked, every receive naming that peer fails fast and every
// send to it is refused, so no operation can block indefinitely on a rank
// that will never answer.
var ErrPeerDown = errors.New("comm: peer down")

// ErrPeerDeadline is the cause recorded when a peer is marked down because a
// blocked receive waited past its deadline. It wraps nothing; use
// errors.Is(err, ErrPeerDeadline) to distinguish suspicion-by-timeout from a
// transport-reported failure.
var ErrPeerDeadline = errors.New("comm: peer deadline exceeded")

// PeerDownError reports that an operation could not complete because the
// named peer is marked down. It matches ErrPeerDown via errors.Is and unwraps
// to the recorded cause (a transport read error, ErrPeerDeadline, or whatever
// MarkPeerDown was given), so callers can surface why the peer was declared
// dead — e.g. a TCPEndpoint.ReadError — instead of a bare timeout.
type PeerDownError struct {
	Rank  int
	Cause error
}

// Error formats the failure with its cause.
func (e *PeerDownError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("comm: peer %d down: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("comm: peer %d down", e.Rank)
}

// Is matches the ErrPeerDown sentinel.
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }

// Unwrap exposes the recorded cause.
func (e *PeerDownError) Unwrap() error { return e.Cause }

// PeerFailureNotifier is implemented by transports that can observe peer
// failures themselves (a TCP endpoint whose per-peer read loop died, a fault
// injector delivering a scripted crash signal). NewCommunicator registers
// MarkPeerDown with the endpoint when the interface is present, so
// transport-level failures surface as PeerDownError on blocked operations
// instead of hanging them. Implementations must replay failures observed
// before registration.
type PeerFailureNotifier interface {
	NotifyPeerFailure(fn func(rank int, cause error))
}

// BorrowingSender is an optional Endpoint fast path used by SendCopy:
// SendBorrowed delivers a message whose payload the transport only borrows
// for the duration of the call. The transport must finish reading m.Data
// before returning and must neither retain nor release it — ownership stays
// with the caller on every path, success and error alike. Only transports
// that consume payloads synchronously may implement it (the shared-ring
// transport encodes in place); transports that hand the slice onward or
// defer the encode (in-process channels, vectored TCP writes) must not.
type BorrowingSender interface {
	SendBorrowed(dest int, m Message) error
}

// FillSender is an optional Endpoint fast path used by SendFrom: the
// transport reserves the outgoing frame's payload span in its own memory (a
// shared-ring span) and invokes fill exactly once to produce the payload
// there — dst is the reserved span, a and b are the caller's operands, and
// len(dst) == len(a). The caller's combine pass and the encode copy collapse
// into one write. fill may also write a (the allgather hop mirrors the
// incoming chunk into the result buffer in the same pass); a and b stay
// caller-owned throughout. SendFill returns handled=false — with nothing
// reserved and fill not called — when this destination or payload cannot
// take the in-place path, and the caller falls back to a staged send.
type FillSender interface {
	SendFill(dest, tag int, a, b tensor.Vector, fill func(dst, a, b tensor.Vector)) (handled bool, err error)
}

// GroupBroadcaster is an optional Endpoint capability: the transport can
// publish one payload to a whole group of peers in a single operation (a
// shared-memory broadcast segment every colocated rank reads in place),
// instead of one send per peer. BroadcastGroup returns the peer ranks that
// receive such a publication (never including the endpoint's own rank; nil
// or empty when the capability is unavailable), and BroadcastBudget the
// largest payload byte count SendBroadcast accepts. SendBroadcast borrows
// data for the duration of the call — ownership stays with the caller on
// every path — and on return the payload is en route to every rank in
// BroadcastGroup as an ordinary tagged message from this endpoint's rank;
// like Send, it may block for flow control. Group membership and budget are
// fixed for the endpoint's lifetime, so SPMD callers can derive consistent
// routing decisions from them.
type GroupBroadcaster interface {
	BroadcastGroup() []int
	BroadcastBudget() int
	SendBroadcast(tag int, data tensor.Vector) error
}

// Message is the unit of communication: a payload of float64 values labelled
// with the sending rank and a user tag. The Data vector is owned by whoever
// currently holds the message (sender until Send, transport in flight,
// receiver after Recv); it is typically a pool lease.
type Message struct {
	Source int
	Tag    int
	Data   tensor.Vector
}

// Endpoint is the contract a transport must satisfy to back a Communicator.
// Implementations live in internal/transport.
type Endpoint interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the job.
	Size() int
	// Send delivers m to the destination rank. It may block for flow control
	// but must not require the destination to have posted a receive. Send
	// takes ownership of m.Data unconditionally (also on error): the
	// transport either forwards the vector unchanged to the destination's
	// inbox (in-process delivery), consumes it into the wire encoding and
	// releases it back to the vector pool (TCP), or releases it on its error
	// paths.
	Send(dest int, m Message) error
	// Inbox returns the stream of messages addressed to this rank. The channel
	// is closed when the endpoint is closed. Each delivered message transfers
	// ownership of its Data vector to the receiver.
	Inbox() <-chan Message
	// Close shuts the endpoint down and releases its resources.
	Close() error
}

// Release returns a received payload to the shared vector pool. It is the
// companion of Recv/RecvCancel/TryRecv/SendRecv: call it once the payload has
// been consumed (reduced into a local buffer, copied out, discarded). It is an
// alias for tensor.PutVector and inherits its contract: at most one release
// per lease, and no live references afterwards.
func Release(v tensor.Vector) { tensor.PutVector(v) }

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Communicator provides blocking and non-blocking tagged point-to-point
// communication among a fixed group of ranks. It is safe for concurrent use
// by multiple goroutines.
type Communicator struct {
	ep Endpoint

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []Message // unexpected-message queue, arrival order
	closed   bool
	closedCh chan struct{} // closed when the transport is down (see Done)
	demuxWG  sync.WaitGroup

	down      []error          // per-rank down cause; nil = peer believed up
	downHooks []func(rank int) // observers notified (outside mu) on each marking

	discard []tagRange // sticky arrival-time discard ranges (see DiscardTagsOnArrival)

	// slots is the direct-delivery match table, one slot per source rank (see
	// direct.go). discardRanges mirrors discard for lock-free reads on the
	// direct fast path; it is replaced, never mutated, under mu.
	slots         []directSlot
	discardRanges atomic.Pointer[[]tagRange]
}

// tagRange is a half-open [lo, hi) interval of tags.
type tagRange struct{ lo, hi int }

// NewCommunicator wraps a transport endpoint. The communicator starts a demux
// goroutine that drains the endpoint's inbox; Close (or closing the endpoint)
// stops it. If the endpoint can observe peer failures itself
// (PeerFailureNotifier), they are wired to MarkPeerDown.
func NewCommunicator(ep Endpoint) *Communicator {
	c := &Communicator{ep: ep, down: make([]error, ep.Size()), closedCh: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	c.slots = make([]directSlot, ep.Size())
	for i := range c.slots {
		c.slots[i].init()
	}
	// Install the direct sink before the demux goroutine first touches the
	// inbox: a DirectSource transport starts its receive loop on whichever of
	// SetDeliver or Inbox it sees first, so ordering them this way guarantees
	// every message of this communicator's lifetime travels one path.
	if ds, ok := ep.(DirectSource); ok {
		ds.SetDeliver(c.deliverDirect)
	}
	c.demuxWG.Add(1)
	go c.demux()
	if n, ok := ep.(PeerFailureNotifier); ok {
		n.NotifyPeerFailure(c.MarkPeerDown)
	}
	return c
}

func (c *Communicator) demux() {
	defer c.demuxWG.Done()
	for m := range c.ep.Inbox() {
		c.mu.Lock()
		if c.discardedLocked(m.Tag) {
			c.mu.Unlock()
			tensor.PutVector(m.Data) // demux was the last owner
			continue
		}
		c.dispatchLocked(m)
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.closedCh)
}

// Done returns a channel closed once the communicator's transport is down
// (every blocked receive has been or will be woken with ErrClosed). It lets
// code that deliberately waits on messages that may never arrive — the
// schedule executor's held activation receives — observe shutdown without a
// receive posted.
func (c *Communicator) Done() <-chan struct{} { return c.closedCh }

// Rank returns this communicator's rank.
func (c *Communicator) Rank() int { return c.ep.Rank() }

// Size returns the number of ranks in the communicator.
func (c *Communicator) Size() int { return c.ep.Size() }

// Close shuts down the underlying endpoint and wakes any blocked receivers
// with ErrClosed. Unexpected messages still queued are released back to the
// vector pool — after Close no receive can claim them, and dropping the queue
// without releasing would leak their leases.
func (c *Communicator) Close() error {
	err := c.ep.Close()
	c.demuxWG.Wait()
	c.mu.Lock()
	for _, m := range c.queue {
		tensor.PutVector(m.Data)
	}
	c.queue = nil
	c.mu.Unlock()
	return err
}

func (c *Communicator) checkPeer(rank int) error {
	if rank < 0 || rank >= c.Size() {
		return fmt.Errorf("comm: peer rank %d out of range [0,%d)", rank, c.Size())
	}
	return nil
}

// MarkPeerDown records that the given rank is unreachable, with an optional
// cause. The marking is sticky and idempotent (the first cause wins). Blocked
// receives naming the rank wake up with a PeerDownError; subsequent sends to
// it are refused. Registered OnPeerDown observers are invoked (outside the
// communicator lock) on the first marking.
func (c *Communicator) MarkPeerDown(rank int, cause error) {
	if rank < 0 || rank >= c.Size() || rank == c.Rank() {
		return
	}
	if cause == nil {
		cause = errors.New("marked down")
	}
	c.mu.Lock()
	if c.down[rank] != nil {
		c.mu.Unlock()
		return
	}
	c.down[rank] = cause
	hooks := append([]func(int){}, c.downHooks...)
	c.cond.Broadcast()
	if c.slots != nil {
		c.slots[rank].nudgeLocked() // wake a direct receiver naming this peer
	}
	c.mu.Unlock()
	for _, fn := range hooks {
		fn(rank)
	}
}

// PeerDown reports whether the rank has been marked down.
func (c *Communicator) PeerDown(rank int) bool {
	if rank < 0 || rank >= c.Size() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[rank] != nil
}

// PeerError returns the cause the rank was marked down with (nil if up).
func (c *Communicator) PeerError(rank int) error {
	if rank < 0 || rank >= c.Size() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[rank]
}

// DownPeers returns the ranks currently marked down, in ascending order.
func (c *Communicator) DownPeers() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for r, cause := range c.down {
		if cause != nil {
			out = append(out, r)
		}
	}
	return out
}

// OnPeerDown registers an observer invoked once per peer when that peer is
// marked down. Peers already down at registration time are replayed
// immediately, so no failure is lost to registration order. Observers run
// outside the communicator lock and may call back into the communicator.
func (c *Communicator) OnPeerDown(fn func(rank int)) {
	c.mu.Lock()
	c.downHooks = append(c.downHooks, fn)
	var already []int
	for r, cause := range c.down {
		if cause != nil {
			already = append(already, r)
		}
	}
	c.mu.Unlock()
	for _, r := range already {
		fn(r)
	}
}

// peerDownErrLocked builds the typed error for a down peer. Caller holds c.mu.
func (c *Communicator) peerDownErrLocked(rank int) error {
	return &PeerDownError{Rank: rank, Cause: c.down[rank]}
}

// checkPeerUp returns a PeerDownError when dest is marked down.
func (c *Communicator) checkPeerUp(dest int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[dest] != nil {
		return c.peerDownErrLocked(dest)
	}
	return nil
}

// Send delivers data to dest with the given tag, transferring ownership of
// the payload: the caller must not read or write data after the call (on the
// in-process transport the receiver gets the very same backing array; the TCP
// transport consumes it into the wire frame and releases it to the pool).
// Callers that still need the buffer use SendCopy.
//
// Ownership transfers even when Send fails: the payload is released to the
// pool on every error path, so callers never clean up after a send.
func (c *Communicator) Send(dest, tag int, data tensor.Vector) error {
	if err := c.checkPeer(dest); err != nil {
		tensor.PutVector(data)
		return err
	}
	if err := c.checkPeerUp(dest); err != nil {
		tensor.PutVector(data)
		return err
	}
	err := c.ep.Send(dest, Message{Source: c.Rank(), Tag: tag, Data: data})
	if err != nil && !errors.Is(err, ErrPeerDown) {
		// The transport may fail a send because the peer's connection died
		// while the frame was in flight (the read loop marks the peer down and
		// tears the connection). Report that as the typed peer failure rather
		// than a bare I/O error so callers see one error surface.
		if downErr := c.checkPeerUp(dest); downErr != nil {
			return downErr
		}
	}
	return err
}

// SendCopy behaves like Send but snapshots data into a pool-leased buffer
// first, so the caller keeps ownership of data and may reuse it immediately.
// This is the right call when the payload aliases a live working buffer (a
// caller-owned gradient, a collective's accumulation buffer).
//
// On a transport that implements BorrowingSender the snapshot is elided: the
// transport encodes the caller's buffer in place before returning, which is
// one whole payload copy saved per send on the shared-ring hot path.
func (c *Communicator) SendCopy(dest, tag int, data tensor.Vector) error {
	bs, ok := c.ep.(BorrowingSender)
	if !ok {
		// Send performs the peer validation and releases the copy on every
		// error path, so one snapshot and one delegation suffice.
		return c.Send(dest, tag, tensor.GetVectorCopy(data))
	}
	if err := c.checkPeer(dest); err != nil {
		return err
	}
	if err := c.checkPeerUp(dest); err != nil {
		return err
	}
	err := bs.SendBorrowed(dest, Message{Source: c.Rank(), Tag: tag, Data: data})
	if err != nil && !errors.Is(err, ErrPeerDown) {
		// Mirror Send: a transport failure caused by the peer dying mid-send
		// surfaces as the typed peer failure.
		if downErr := c.checkPeerUp(dest); downErr != nil {
			return downErr
		}
	}
	return err
}

// SendFrom sends a len(a)-element frame whose payload is produced by
// fill(dst, a, b) — dst[i] computed from the operands — directly into
// transport memory when the transport supports it (FillSender), eliding the
// staging buffer entirely on the shared-ring hot path. Elsewhere the payload
// is staged through a pool lease: exactly one combine pass and at most one
// copy on every transport, never more than the Apply-then-SendCopy sequence
// it replaces. fill is invoked exactly once; a and b remain caller-owned.
func (c *Communicator) SendFrom(dest, tag int, a, b tensor.Vector, fill func(dst, a, b tensor.Vector)) error {
	if fs, ok := c.ep.(FillSender); ok {
		if err := c.checkPeer(dest); err != nil {
			return err
		}
		if err := c.checkPeerUp(dest); err != nil {
			return err
		}
		handled, err := fs.SendFill(dest, tag, a, b, fill)
		if handled {
			if err != nil && !errors.Is(err, ErrPeerDown) {
				// Mirror Send: a transport failure caused by the peer dying
				// mid-send surfaces as the typed peer failure.
				if downErr := c.checkPeerUp(dest); downErr != nil {
					return downErr
				}
			}
			return err
		}
	}
	tmp := tensor.GetVector(len(a))
	fill(tmp, a, b)
	return c.Send(dest, tag, tmp)
}

// BroadcastGroup returns the peer ranks a SendBroadcastCopy from this
// communicator reaches in one transport-level publication, nil when the
// endpoint has no group-broadcast capability (GroupBroadcaster). Callers
// gate one-to-many protocols on it: the group and budget are fixed for the
// communicator's lifetime, so every rank of an SPMD collective can derive
// the same routing decision locally.
func (c *Communicator) BroadcastGroup() []int {
	if gb, ok := c.ep.(GroupBroadcaster); ok {
		return gb.BroadcastGroup()
	}
	return nil
}

// BroadcastBudget returns the largest payload byte count SendBroadcastCopy
// accepts, zero without the capability.
func (c *Communicator) BroadcastBudget() int {
	if gb, ok := c.ep.(GroupBroadcaster); ok {
		return gb.BroadcastBudget()
	}
	return 0
}

// SendBroadcastCopy publishes data once to every rank in BroadcastGroup,
// where it arrives as an ordinary tagged message from this rank — matched,
// queued, and discarded exactly like a point-to-point send. data is
// borrowed: the transport finishes with it before returning and the caller
// keeps ownership on every path. Fails on endpoints without the capability;
// callers must gate on BroadcastGroup first.
func (c *Communicator) SendBroadcastCopy(tag int, data tensor.Vector) error {
	gb, ok := c.ep.(GroupBroadcaster)
	if !ok {
		return fmt.Errorf("comm: endpoint does not support group broadcast")
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return gb.SendBroadcast(tag, data)
}

// SendCopyCancel behaves like SendCopy but gives up with ErrCanceled when
// cancel is closed before the transport accepts the payload. A transport send
// can block indefinitely on a stalled peer (e.g. TCP backpressure from a
// frozen process), so cancel-aware callers that send inline — the pipelined
// collectives' segment streams — use this to stay responsive. A canceled call
// abandons the in-flight send to complete in the background; the communicator
// is then mid-protocol and the only safe follow-up is closing it. The send is
// not issued concurrently with any later send by the same caller (the call
// only returns once the transport accepted the payload), so per-(source, tag)
// FIFO order is preserved.
func (c *Communicator) SendCopyCancel(dest, tag int, data tensor.Vector, cancel <-chan struct{}) error {
	if cancel == nil {
		return c.SendCopy(dest, tag, data)
	}
	req := c.Isend(dest, tag, tensor.GetVectorCopy(data))
	select {
	case <-req.done:
		_, _, err := req.Wait()
		return err
	case <-cancel:
		return ErrCanceled
	}
}

// matchLocked scans the unexpected queue for the first message matching
// (source, tag) and removes it. Caller must hold c.mu.
func (c *Communicator) matchLocked(source, tag int) (Message, bool) {
	for i, m := range c.queue {
		if (source == AnySource || m.Source == source) && (tag == AnyTag || m.Tag == tag) {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// Recv blocks until a message matching (source, tag) arrives and returns its
// payload and status. source may be AnySource and tag may be AnyTag. The
// returned vector is a pool lease owned by the caller; release it with
// Release once consumed.
func (c *Communicator) Recv(source, tag int) (tensor.Vector, Status, error) {
	return c.RecvTimeout(source, tag, nil, 0)
}

// RecvCancel behaves like Recv but gives up with ErrCanceled if cancel is
// closed before a matching message arrives. It is used by the schedule
// executor to abandon receives for redundant activation messages that may
// never be sent (e.g. when this rank was the only initiator of a solo
// collective).
func (c *Communicator) RecvCancel(source, tag int, cancel <-chan struct{}) (tensor.Vector, Status, error) {
	return c.RecvTimeout(source, tag, cancel, 0)
}

// RecvTimeout is the fully general blocking receive: it matches (source, tag)
// like Recv, aborts with ErrCanceled when cancel fires, and — when deadline is
// positive and source names a specific rank — gives up after waiting that
// long, marking the peer down (cause ErrPeerDeadline) and returning a
// PeerDownError. A receive naming a peer already marked down fails fast with
// a PeerDownError, though an already-queued matching message is still
// delivered first (the payload made it before the peer died).
//
// The deadline is a failure-detector knob, not a latency bound: it should be
// chosen far above any legitimate skew, because a peer it fires on is treated
// as permanently failed by this communicator.
func (c *Communicator) RecvTimeout(source, tag int, cancel <-chan struct{}, deadline time.Duration) (tensor.Vector, Status, error) {
	if source != AnySource {
		if err := c.checkPeer(source); err != nil {
			return nil, Status{}, err
		}
		if tag != AnyTag && c.slots != nil {
			// Fully named receives take the direct-delivery path: same
			// semantics, one goroutine hop instead of two (see direct.go).
			return c.recvDirect(source, tag, cancel, deadline)
		}
	} else {
		deadline = 0 // a wildcard receive names no peer to suspect
	}
	return c.recvQueued(source, tag, cancel, deadline)
}

// recvQueued is the classic cond-based receive: it waits for the demux (or a
// direct delivery's fallback) to queue a matching message. Wildcard receives
// and receives whose source slot is held by another receiver wait here.
func (c *Communicator) recvQueued(source, tag int, cancel <-chan struct{}, deadline time.Duration) (tensor.Vector, Status, error) {
	// Watcher goroutines convert channel close / timer expiry into
	// condition-variable wakeups so the wait loop below can observe them.
	var stop chan struct{}
	if cancel != nil {
		stop = make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-cancel:
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			case <-stop:
			}
		}()
	}
	var start time.Time
	var timer *time.Timer
	if deadline > 0 {
		start = time.Now()
		timer = time.AfterFunc(deadline, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer timer.Stop()
	}

	c.mu.Lock()
	for {
		if m, ok := c.matchLocked(source, tag); ok {
			c.mu.Unlock()
			return m.Data, Status{Source: m.Source, Tag: m.Tag, Count: len(m.Data)}, nil
		}
		if source != AnySource && c.down[source] != nil {
			err := c.peerDownErrLocked(source)
			c.mu.Unlock()
			return nil, Status{}, err
		}
		if cancel != nil {
			select {
			case <-cancel:
				c.mu.Unlock()
				return nil, Status{}, ErrCanceled
			default:
			}
		}
		if c.closed {
			c.mu.Unlock()
			return nil, Status{}, ErrClosed
		}
		if deadline > 0 && time.Since(start) >= deadline {
			c.mu.Unlock()
			c.MarkPeerDown(source, fmt.Errorf("%w: no message within %v", ErrPeerDeadline, deadline))
			return nil, Status{}, &PeerDownError{Rank: source, Cause: c.PeerError(source)}
		}
		c.cond.Wait()
	}
}

// DiscardTagRange removes every queued unexpected message whose tag t
// satisfies lo <= t < hi and returns the number removed. Long-running
// persistent collectives use monotonically increasing per-round tags within a
// private tag namespace and call this once per round to purge stray duplicate
// activation messages from already-completed rounds, keeping the unexpected
// queue short without touching other namespaces.
func (c *Communicator) DiscardTagRange(lo, hi int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.queue[:0]
	removed := 0
	for _, m := range c.queue {
		if m.Tag >= lo && m.Tag < hi {
			removed++
			tensor.PutVector(m.Data) // the queue was the last owner
			continue
		}
		kept = append(kept, m)
	}
	c.queue = kept
	return removed
}

// DiscardTagsOnArrival registers a sticky discard range: from now on, every
// arriving message whose tag t satisfies lo <= t < hi is released back to the
// vector pool at the demux instead of entering the unexpected queue, and any
// matching messages already queued are purged (the count purged is returned).
// Unlike DiscardTagRange — a one-shot sweep of what has already arrived — this
// also covers frames still in flight. Epoch transitions use it to blocklist
// the outgoing epoch's tag blocks on the surviving communicators, so a
// straggler frame from epoch N can never match a receive posted in epoch N+1
// or sit in the queue as a leaked lease. Ranges accumulate; there is no
// unregister, because a retired epoch's tag block stays retired until the
// namespace wraps, at which point the communicator generation that held the
// blocklist has itself been retired.
func (c *Communicator) DiscardTagsOnArrival(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	c.mu.Lock()
	c.discard = append(c.discard, tagRange{lo, hi})
	mirror := append([]tagRange(nil), c.discard...)
	c.discardRanges.Store(&mirror) // direct fast path reads this lock-free
	c.mu.Unlock()
	return c.DiscardTagRange(lo, hi)
}

// discardedLocked reports whether a tag falls in a registered arrival-time
// discard range. Caller holds c.mu.
func (c *Communicator) discardedLocked(tag int) bool {
	return tagInRanges(c.discard, tag)
}

// tagInRanges reports whether tag falls in any of the half-open ranges. Used
// lock-free by the direct fast path (on the immutable mirror slice) and under
// c.mu by discardedLocked.
func tagInRanges(rs []tagRange, tag int) bool {
	for _, r := range rs {
		if tag >= r.lo && tag < r.hi {
			return true
		}
	}
	return false
}

// TryRecv returns a matching message if one is already available, without
// blocking. The boolean result reports whether a message was returned.
func (c *Communicator) TryRecv(source, tag int) (tensor.Vector, Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.matchLocked(source, tag); ok {
		return m.Data, Status{Source: m.Source, Tag: m.Tag, Count: len(m.Data)}, true
	}
	return nil, Status{}, false
}

// Pending returns the number of unexpected messages currently queued. It is
// intended for tests and diagnostics.
func (c *Communicator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Request represents an outstanding non-blocking operation.
type Request struct {
	done   chan struct{}
	data   tensor.Vector
	status Status
	err    error
}

// Wait blocks until the operation completes and returns the received payload
// (nil for sends), its status, and any error.
func (r *Request) Wait() (tensor.Vector, Status, error) {
	<-r.done
	return r.data, r.status, r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a non-blocking send and returns a request that completes when
// the message has been handed to the transport. Like Send, it takes ownership
// of data immediately: the caller must not touch the vector after the call.
func (c *Communicator) Isend(dest, tag int, data tensor.Vector) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.err = c.Send(dest, tag, data)
	}()
	return r
}

// Irecv starts a non-blocking receive for a message matching (source, tag).
func (c *Communicator) Irecv(source, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.data, r.status, r.err = c.Recv(source, tag)
	}()
	return r
}

// WaitAll waits for every request and returns the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SendRecv performs a combined send to dest and receive from source with the
// given tags, the workhorse of symmetric exchange patterns such as recursive
// doubling. The outgoing payload is borrowed (snapshotted into a pool lease),
// so the caller keeps ownership of data; the returned vector is a lease the
// caller releases with Release.
func (c *Communicator) SendRecv(dest, sendTag int, data tensor.Vector, source, recvTag int) (tensor.Vector, Status, error) {
	return c.SendRecvCancel(dest, sendTag, data, source, recvTag, nil)
}

// SendRecvCancel behaves like SendRecv but gives up on the receive half with
// ErrCanceled when cancel is closed before a matching message arrives. It is
// the primitive the cancel-aware collectives are built on: a collective
// blocked on a peer that will never send (e.g. because the caller's context
// was canceled mid-job) unblocks instead of hanging forever.
//
// Without a cancel channel the send half runs inline rather than on a helper
// goroutine: every communicator's demux goroutine continuously drains its
// endpoint inbox into the unexpected queue, so a transport send can only
// block transiently for flow control, never on the peer entering the
// collective — the classic exchange deadlock cannot occur, and the hot path
// stays free of goroutine, channel, and request allocations.
//
// With a cancel channel the send is overlapped on a goroutine instead: a
// transport send can still block indefinitely on a stalled peer (e.g. TCP
// backpressure from a frozen process), and a cancelable call must return
// ErrCanceled even then. A canceled call abandons the in-flight send to
// complete in the background; the communicator is then mid-collective and the
// only safe follow-up is closing it.
func (c *Communicator) SendRecvCancel(dest, sendTag int, data tensor.Vector, source, recvTag int, cancel <-chan struct{}) (tensor.Vector, Status, error) {
	return c.SendRecvTimeout(dest, sendTag, data, source, recvTag, cancel, 0)
}

// SendRecvTimeout behaves like SendRecvCancel with a per-peer deadline on the
// receive half (see RecvTimeout): a peer that neither delivers a matching
// message nor is otherwise heard from within the deadline is marked down and
// the call returns a PeerDownError instead of blocking forever — the typed
// surface for "the peer's read loop died mid-collective".
func (c *Communicator) SendRecvTimeout(dest, sendTag int, data tensor.Vector, source, recvTag int, cancel <-chan struct{}, deadline time.Duration) (tensor.Vector, Status, error) {
	if cancel == nil {
		if err := c.SendCopy(dest, sendTag, data); err != nil {
			return nil, Status{}, err
		}
		return c.RecvTimeout(source, recvTag, nil, deadline)
	}
	sreq := c.Isend(dest, sendTag, tensor.GetVectorCopy(data))
	rdata, rstatus, rerr := c.RecvTimeout(source, recvTag, cancel, deadline)
	if errors.Is(rerr, ErrCanceled) || errors.Is(rerr, ErrPeerDown) {
		// The peer will never satisfy the receive; abandon the in-flight send
		// (it may itself be stuck on the dead peer's backpressure) rather than
		// waiting on it.
		return nil, Status{}, rerr
	}
	// The receive may have completed (its message was already queued) while
	// the send is still stuck on a stalled peer, so the wait for the send must
	// honor the cancel channel too — otherwise cancellation could never
	// unblock the call it exists to unblock.
	select {
	case <-sreq.done:
	case <-cancel:
		tensor.PutVector(rdata)
		return nil, Status{}, ErrCanceled
	}
	if _, _, serr := sreq.Wait(); serr != nil && rerr == nil {
		tensor.PutVector(rdata)
		return nil, Status{}, serr
	}
	return rdata, rstatus, rerr
}
