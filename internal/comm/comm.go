// Package comm provides the message-passing substrate the collectives are
// built on: ranks, communicators, and tag-matched point-to-point messaging
// with blocking and non-blocking variants.
//
// The design mirrors the small subset of MPI semantics the paper relies on.
// A Communicator wraps a transport Endpoint (see internal/transport for the
// in-process and TCP implementations) and adds MPI-style message matching:
// receives name a (source, tag) pair — either may be a wildcard — and messages
// that arrive before a matching receive is posted are held in an unexpected
// queue, preserving per-(source, tag) FIFO order.
package comm

import (
	"errors"
	"fmt"
	"sync"

	"eagersgd/internal/tensor"
)

// Wildcards accepted by Recv and Irecv.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// ErrClosed is returned by operations on a communicator whose transport has
// been shut down.
var ErrClosed = errors.New("comm: communicator closed")

// ErrCanceled is returned by RecvCancel when the cancel channel fires before
// a matching message arrives.
var ErrCanceled = errors.New("comm: receive canceled")

// Message is the unit of communication: a payload of float64 values labelled
// with the sending rank and a user tag.
type Message struct {
	Source int
	Tag    int
	Data   tensor.Vector
}

// Endpoint is the contract a transport must satisfy to back a Communicator.
// Implementations live in internal/transport.
type Endpoint interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the job.
	Size() int
	// Send delivers m to the destination rank. It may block for flow control
	// but must not require the destination to have posted a receive.
	Send(dest int, m Message) error
	// Inbox returns the stream of messages addressed to this rank. The channel
	// is closed when the endpoint is closed.
	Inbox() <-chan Message
	// Close shuts the endpoint down and releases its resources.
	Close() error
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Communicator provides blocking and non-blocking tagged point-to-point
// communication among a fixed group of ranks. It is safe for concurrent use
// by multiple goroutines.
type Communicator struct {
	ep Endpoint

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Message // unexpected-message queue, arrival order
	closed  bool
	demuxWG sync.WaitGroup
}

// NewCommunicator wraps a transport endpoint. The communicator starts a demux
// goroutine that drains the endpoint's inbox; Close (or closing the endpoint)
// stops it.
func NewCommunicator(ep Endpoint) *Communicator {
	c := &Communicator{ep: ep}
	c.cond = sync.NewCond(&c.mu)
	c.demuxWG.Add(1)
	go c.demux()
	return c
}

func (c *Communicator) demux() {
	defer c.demuxWG.Done()
	for m := range c.ep.Inbox() {
		c.mu.Lock()
		c.queue = append(c.queue, m)
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Rank returns this communicator's rank.
func (c *Communicator) Rank() int { return c.ep.Rank() }

// Size returns the number of ranks in the communicator.
func (c *Communicator) Size() int { return c.ep.Size() }

// Close shuts down the underlying endpoint and wakes any blocked receivers
// with ErrClosed.
func (c *Communicator) Close() error {
	err := c.ep.Close()
	c.demuxWG.Wait()
	return err
}

func (c *Communicator) checkPeer(rank int) error {
	if rank < 0 || rank >= c.Size() {
		return fmt.Errorf("comm: peer rank %d out of range [0,%d)", rank, c.Size())
	}
	return nil
}

// Send delivers data to dest with the given tag. The payload is copied before
// being handed to the transport, so the caller may reuse the buffer
// immediately.
func (c *Communicator) Send(dest, tag int, data tensor.Vector) error {
	if err := c.checkPeer(dest); err != nil {
		return err
	}
	msg := Message{Source: c.Rank(), Tag: tag, Data: data.Clone()}
	return c.ep.Send(dest, msg)
}

// matchLocked scans the unexpected queue for the first message matching
// (source, tag) and removes it. Caller must hold c.mu.
func (c *Communicator) matchLocked(source, tag int) (Message, bool) {
	for i, m := range c.queue {
		if (source == AnySource || m.Source == source) && (tag == AnyTag || m.Tag == tag) {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// Recv blocks until a message matching (source, tag) arrives and returns its
// payload and status. source may be AnySource and tag may be AnyTag.
func (c *Communicator) Recv(source, tag int) (tensor.Vector, Status, error) {
	if source != AnySource {
		if err := c.checkPeer(source); err != nil {
			return nil, Status{}, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if m, ok := c.matchLocked(source, tag); ok {
			return m.Data, Status{Source: m.Source, Tag: m.Tag, Count: len(m.Data)}, nil
		}
		if c.closed {
			return nil, Status{}, ErrClosed
		}
		c.cond.Wait()
	}
}

// RecvCancel behaves like Recv but gives up with ErrCanceled if cancel is
// closed before a matching message arrives. It is used by the schedule
// executor to abandon receives for redundant activation messages that may
// never be sent (e.g. when this rank was the only initiator of a solo
// collective).
func (c *Communicator) RecvCancel(source, tag int, cancel <-chan struct{}) (tensor.Vector, Status, error) {
	if source != AnySource {
		if err := c.checkPeer(source); err != nil {
			return nil, Status{}, err
		}
	}
	if cancel == nil {
		return c.Recv(source, tag)
	}
	// A watcher goroutine converts the channel close into a condition-variable
	// wakeup so the waiter below can observe it.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-cancel:
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()

	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if m, ok := c.matchLocked(source, tag); ok {
			return m.Data, Status{Source: m.Source, Tag: m.Tag, Count: len(m.Data)}, nil
		}
		select {
		case <-cancel:
			return nil, Status{}, ErrCanceled
		default:
		}
		if c.closed {
			return nil, Status{}, ErrClosed
		}
		c.cond.Wait()
	}
}

// DiscardTagRange removes every queued unexpected message whose tag t
// satisfies lo <= t < hi and returns the number removed. Long-running
// persistent collectives use monotonically increasing per-round tags within a
// private tag namespace and call this once per round to purge stray duplicate
// activation messages from already-completed rounds, keeping the unexpected
// queue short without touching other namespaces.
func (c *Communicator) DiscardTagRange(lo, hi int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.queue[:0]
	removed := 0
	for _, m := range c.queue {
		if m.Tag >= lo && m.Tag < hi {
			removed++
			continue
		}
		kept = append(kept, m)
	}
	c.queue = kept
	return removed
}

// TryRecv returns a matching message if one is already available, without
// blocking. The boolean result reports whether a message was returned.
func (c *Communicator) TryRecv(source, tag int) (tensor.Vector, Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.matchLocked(source, tag); ok {
		return m.Data, Status{Source: m.Source, Tag: m.Tag, Count: len(m.Data)}, true
	}
	return nil, Status{}, false
}

// Pending returns the number of unexpected messages currently queued. It is
// intended for tests and diagnostics.
func (c *Communicator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Request represents an outstanding non-blocking operation.
type Request struct {
	done   chan struct{}
	data   tensor.Vector
	status Status
	err    error
}

// Wait blocks until the operation completes and returns the received payload
// (nil for sends), its status, and any error.
func (r *Request) Wait() (tensor.Vector, Status, error) {
	<-r.done
	return r.data, r.status, r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a non-blocking send and returns a request that completes when
// the message has been handed to the transport.
func (c *Communicator) Isend(dest, tag int, data tensor.Vector) *Request {
	r := &Request{done: make(chan struct{})}
	payload := data.Clone()
	go func() {
		defer close(r.done)
		if err := c.checkPeer(dest); err != nil {
			r.err = err
			return
		}
		r.err = c.ep.Send(dest, Message{Source: c.Rank(), Tag: tag, Data: payload})
	}()
	return r
}

// Irecv starts a non-blocking receive for a message matching (source, tag).
func (c *Communicator) Irecv(source, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.data, r.status, r.err = c.Recv(source, tag)
	}()
	return r
}

// WaitAll waits for every request and returns the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SendRecv performs a combined send to dest and receive from source with the
// given tags, overlapping the two operations to avoid deadlock in symmetric
// exchange patterns such as recursive doubling.
func (c *Communicator) SendRecv(dest, sendTag int, data tensor.Vector, source, recvTag int) (tensor.Vector, Status, error) {
	return c.SendRecvCancel(dest, sendTag, data, source, recvTag, nil)
}

// SendRecvCancel behaves like SendRecv but gives up on the receive half with
// ErrCanceled when cancel is closed before a matching message arrives. It is
// the primitive the cancel-aware collectives are built on: a collective
// blocked on a peer that will never send (e.g. because the caller's context
// was canceled mid-job) unblocks instead of hanging forever. When the receive
// is canceled the in-flight send is abandoned to complete in the background;
// the communicator must be treated as mid-collective and closed.
func (c *Communicator) SendRecvCancel(dest, sendTag int, data tensor.Vector, source, recvTag int, cancel <-chan struct{}) (tensor.Vector, Status, error) {
	sreq := c.Isend(dest, sendTag, data)
	rdata, rstatus, rerr := c.RecvCancel(source, recvTag, cancel)
	if errors.Is(rerr, ErrCanceled) {
		return nil, Status{}, rerr
	}
	if _, _, serr := sreq.Wait(); serr != nil {
		return rdata, rstatus, serr
	}
	return rdata, rstatus, rerr
}
