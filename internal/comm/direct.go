package comm

import (
	"fmt"
	"sync/atomic"
	"time"

	"eagersgd/internal/tensor"
)

// Direct delivery: the hop-free receive path for ring worlds.
//
// The classic delivery chain costs two goroutine wakeups per message: the
// transport's receive loop hands the decoded frame to the inbox channel
// (waking the demux goroutine), demux appends it to the unexpected queue and
// broadcasts the condition variable (waking the receiver). Direct delivery
// collapses that to one: a receiver that names a specific (source, tag) posts
// itself in a per-source match slot, and the transport's receive loop hands a
// matching frame straight to the slot's channel — no inbox, no demux, no
// queue scan, no cond broadcast.
//
// Correctness hinges on three rules:
//
//   - Receivers arm a slot only under c.mu, after the unexpected queue has
//     been checked for a match. An arriving message therefore either claims
//     the armed slot or is queued; it can never bypass an older queued
//     message with the same (source, tag), so per-(source, tag) FIFO order is
//     exactly the demux path's.
//   - The slot state word is gen<<2|phase: every arm advances the generation,
//     so a delivery racing a disarm/re-arm cycle fails its claim CAS instead
//     of delivering to the wrong receive (no ABA).
//   - A claimed delivery is always consumed: every receiver exit path runs
//     disarm, which drains the in-flight message when the claim won the race,
//     and returns it to the caller (exactly what the demux path does when a
//     matching message is already queued). No lease is ever orphaned in a
//     slot.
//
// Everything that cannot take the fast path — wildcard receives, a slot
// already armed by another receiver, tags under an arrival-time discard
// range, transports without a DirectSource receive loop — falls back to the
// inbox/demux/cond machinery unchanged.

// DirectSource is an optional Endpoint capability: the transport's receive
// loop can hand decoded messages straight to the communicator instead of
// routing them through the Inbox channel. SetDeliver installs the sink; a
// transport that has already begun delivering to its Inbox must ignore the
// call (mixing paths for one source could reorder messages), and a transport
// that honors it must deliver every subsequent message of this endpoint
// through fn, transferring ownership of m.Data with each call. The Inbox
// channel still signals shutdown by closing.
type DirectSource interface {
	SetDeliver(fn func(m Message))
}

// Slot phases (low two bits of the state word).
const (
	slotEmpty   uint64 = 0 // no receiver posted
	slotArmed   uint64 = 1 // a receiver is waiting; deliveries may claim
	slotClaimed uint64 = 2 // a delivery won the slot; the message is on ch
)

const slotPhaseMask uint64 = 3

// directSlot is the per-source match slot. One receiver at a time may own it
// (arming is serialized by c.mu); the transport's receive loop and the demux
// goroutine claim it with a generation-checked CAS.
type directSlot struct {
	state atomic.Uint64 // gen<<2 | phase
	tag   atomic.Int64  // matched tag, published before the armed store
	ch    chan Message  // claimed delivery hand-off; buffered so claimers never block
	nudge chan struct{} // state-change kick (peer marked down); buffered
}

func (s *directSlot) init() {
	s.ch = make(chan Message, 1)
	s.nudge = make(chan struct{}, 1)
}

// arm posts a receiver's interest in (tag) and returns the armed state word.
// Caller holds c.mu and has already checked the unexpected queue. Fails when
// the slot is busy with another receive for this source.
func (s *directSlot) arm(tag int) (uint64, bool) {
	w := s.state.Load()
	if w&slotPhaseMask != slotEmpty {
		return 0, false
	}
	select { // clear a stale kick from a previous cycle
	case <-s.nudge:
	default:
	}
	s.tag.Store(int64(tag))
	w = (w>>2+1)<<2 | slotArmed
	s.state.Store(w)
	return w, true
}

// tryClaim attempts to win an armed slot matching tag. Safe without c.mu: the
// generation in the observed word makes the CAS fail if the slot was disarmed
// or re-armed in between. On success the caller must complete the delivery by
// sending exactly one message on s.ch.
func (s *directSlot) tryClaim(tag int) bool {
	w := s.state.Load()
	return w&slotPhaseMask == slotArmed &&
		s.tag.Load() == int64(tag) &&
		s.state.CompareAndSwap(w, w&^slotPhaseMask|slotClaimed)
}

// disarm withdraws the receiver from its armed slot (w is the word arm
// returned). When a delivery claimed the slot concurrently, the in-flight
// message is drained and returned — the receiver must treat it as a completed
// receive, never drop it.
func (s *directSlot) disarm(w uint64) (Message, bool) {
	if s.state.CompareAndSwap(w, w&^slotPhaseMask) {
		return Message{}, false
	}
	// The claim won: the claimer sends on ch immediately after its CAS, so
	// this receive completes promptly. Only then does the slot return to
	// empty, keeping the channel strictly one-delivery-per-arm.
	m := <-s.ch
	s.state.Store(w &^ slotPhaseMask)
	return m, true
}

// release marks a slot empty after the receiver consumed a delivery from ch.
func (s *directSlot) release(w uint64) { s.state.Store(w &^ slotPhaseMask) }

// nudgeLocked kicks a waiting receiver to re-examine communicator state
// (used by MarkPeerDown). Caller holds c.mu, which serializes it against
// arming, so an armed receiver cannot miss the kick.
func (s *directSlot) nudgeLocked() {
	if s.state.Load()&slotPhaseMask == slotArmed {
		select {
		case s.nudge <- struct{}{}:
		default:
		}
	}
}

// testHookDirectPreClaim, when non-nil, runs on the direct fast path between
// the lock-free discard-range check and the claim attempt. It exists only so
// tests can deterministically interleave a DiscardTagsOnArrival installation
// into that window — the historical race the post-claim re-check closes.
var testHookDirectPreClaim func(m Message)

// deliverDirect is the sink installed on DirectSource transports: the
// receive loop calls it once per decoded message, transferring ownership of
// m.Data. The fast path claims an armed matching slot with no lock; every
// miss — no receiver posted, tag mismatch, wildcard waiters, a tag under an
// arrival-time discard range — takes c.mu and runs the same dispatch the
// demux goroutine uses, so the two paths are observationally identical.
//
// The arrival-time discard ranges are re-checked AFTER a successful claim:
// the pre-claim load alone races DiscardTagsOnArrival (load nil, lose the CPU
// to the installation, then claim — handing the receiver a frame the
// blocklist was meant to kill, e.g. a wrapped-epoch straggler). The re-check
// cannot miss an installation the receiver is entitled to: the claim's CAS on
// the slot word synchronizes with the receiver's arm store, and arming
// happens under c.mu — the same lock the ranges are installed under — so a
// range installed before the receiver armed is always visible to the
// post-claim load.
func (c *Communicator) deliverDirect(m Message) {
	s := &c.slots[m.Source]
	if r := c.discardRanges.Load(); r == nil || !tagInRanges(*r, m.Tag) {
		if testHookDirectPreClaim != nil {
			testHookDirectPreClaim(m)
		}
		if s.tryClaim(m.Tag) {
			if r := c.discardRanges.Load(); r != nil && tagInRanges(*r, m.Tag) {
				// Discarded after the claim won the slot: release the payload
				// and complete the slot protocol with an empty sentinel
				// delivery, so the receiver (or its disarm) observes a
				// spurious wake instead of a dead epoch's frame. Source -1
				// marks the sentinel; real messages always carry a rank in
				// [0, Size).
				tensor.PutVector(m.Data)
				s.ch <- Message{Source: -1}
				return
			}
			s.ch <- m
			return
		}
	}
	c.mu.Lock()
	if c.discardedLocked(m.Tag) {
		c.mu.Unlock()
		tensor.PutVector(m.Data) // the delivery path was the last owner
		return
	}
	c.dispatchLocked(m)
	c.mu.Unlock()
}

// dispatchLocked places an arriving, not-discarded message: a posted direct
// receiver with a matching (source, tag) gets it handed straight to its slot;
// otherwise it joins the unexpected queue and the cond waiters are woken.
// Caller holds c.mu. Used by both the demux goroutine and deliverDirect's
// slow path, so slot receivers see deliveries from every transport path.
func (c *Communicator) dispatchLocked(m Message) {
	if c.closed {
		// The transport is down and Close has (or is about to have) purged the
		// unexpected queue. A frame decoded by a transport poll loop racing
		// Close — the demux goroutine is already gone, so only the direct
		// sink can land here — must be released, not queued: nothing will
		// ever match a message queued after the purge, and its lease would
		// leak forever.
		tensor.PutVector(m.Data)
		return
	}
	if c.slots != nil {
		s := &c.slots[m.Source]
		if s.tryClaim(m.Tag) {
			s.ch <- m // buffered: never blocks, even under c.mu
			return
		}
	}
	c.queue = append(c.queue, m)
	c.cond.Broadcast()
}

// recvDirect is the slot-based blocking receive for a specific (source, tag).
// It preserves RecvTimeout's exact semantics: queued matches win first, then
// peer-down, cancellation, closure, and deadline are checked in that order;
// arming happens under c.mu only after those checks, and every wake-up path
// drains a racing delivery before reporting an error.
func (c *Communicator) recvDirect(source, tag int, cancel <-chan struct{}, deadline time.Duration) (tensor.Vector, Status, error) {
	s := &c.slots[source]
	var start time.Time
	var timer *time.Timer
	var timerC <-chan time.Time
	if deadline > 0 {
		start = time.Now()
		timer = time.NewTimer(deadline)
		defer timer.Stop()
		timerC = timer.C
	}
	for {
		c.mu.Lock()
		if m, ok := c.matchLocked(source, tag); ok {
			c.mu.Unlock()
			return m.Data, Status{Source: m.Source, Tag: m.Tag, Count: len(m.Data)}, nil
		}
		if c.down[source] != nil {
			err := c.peerDownErrLocked(source)
			c.mu.Unlock()
			return nil, Status{}, err
		}
		if cancel != nil {
			select {
			case <-cancel:
				c.mu.Unlock()
				return nil, Status{}, ErrCanceled
			default:
			}
		}
		if c.closed {
			c.mu.Unlock()
			return nil, Status{}, ErrClosed
		}
		if deadline > 0 && time.Since(start) >= deadline {
			c.mu.Unlock()
			c.MarkPeerDown(source, fmt.Errorf("%w: no message within %v", ErrPeerDeadline, deadline))
			return nil, Status{}, &PeerDownError{Rank: source, Cause: c.PeerError(source)}
		}
		w, armed := s.arm(tag)
		if !armed {
			// Another receiver holds this source's slot: take the classic
			// cond-based path (this receive's message will arrive via the
			// queue, since an armed slot only claims its own tag). Any
			// deadline budget already spent here carries over.
			c.mu.Unlock()
			remaining := deadline
			if deadline > 0 {
				if remaining = deadline - time.Since(start); remaining <= 0 {
					remaining = time.Nanosecond
				}
			}
			return c.recvQueued(source, tag, cancel, remaining)
		}
		c.mu.Unlock()

		select {
		case m := <-s.ch:
			s.release(w)
			if m.Source < 0 {
				// Sentinel: the claimed delivery was discarded after its claim
				// (see deliverDirect). The receive is still outstanding —
				// re-run the state checks and re-arm with a fresh generation.
				continue
			}
			return m.Data, Status{Source: m.Source, Tag: m.Tag, Count: len(m.Data)}, nil
		case <-s.nudge:
		case <-cancel:
		case <-timerC:
		case <-c.closedCh:
		}
		// Woken for a state change: withdraw from the slot. A delivery that
		// claimed it concurrently completes this receive (the demux path
		// would likewise deliver an already-arrived message before reporting
		// cancellation, closure, or peer death).
		if m, ok := s.disarm(w); ok {
			if m.Source < 0 {
				continue // a discarded claim's sentinel — nothing was delivered
			}
			return m.Data, Status{Source: m.Source, Tag: m.Tag, Count: len(m.Data)}, nil
		}
	}
}
