// Package train is the public training façade of the eager-SGD library: a
// declarative way to run the paper's data-parallel training comparisons —
// synch-SGD baselines against eager-SGD with solo, majority, or quorum
// allreduce — on the built-in stand-in workloads, without touching the
// internal engines.
//
// A run is one Spec: a workload, a Variant (the distributed SGD algorithm,
// built on the collective.Reducer seam, so new variants are one option away),
// an imbalance model, and scale knobs. Example:
//
//	res, err := train.Run(train.Spec{
//	    Ranks: 8, Steps: 60,
//	    Workload:  train.Hyperplane(train.HyperplaneConfig{Dim: 128, Samples: 2048, Batch: 16}),
//	    Variant:   train.EagerSolo(20),
//	    Imbalance: train.RandomDelays(1, 300),
//	    BaseStepMs: 195,
//	})
//
// Times are "paper milliseconds" replayed through a scaled clock
// (ClockScale), so experiments modelled after multi-hour GPU runs finish in
// seconds while preserving the relative imbalance.
package train

import (
	"fmt"
	"math/rand"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/core"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/optimizer"
)

// Variant selects the distributed SGD algorithm. Use the constructors; the
// zero value is synchronous SGD with one fused allreduce.
type Variant struct {
	// Name labels the variant in results; the constructors fill it in.
	Name      string
	opts      []collective.Option
	syncEvery int // model synchronization period, eager variants only
}

// SynchSGD is plain synchronous SGD: one fused allreduce per step.
func SynchSGD() Variant {
	return Variant{Name: "synch-SGD", opts: []collective.Option{collective.WithMode(collective.Sync)}}
}

// SynchDeep500 models the Deep500 DSGD baseline (§3): the gradient is
// reduced in ordered chunks, mirroring the control dependencies a
// DAG-scheduled framework adds.
func SynchDeep500() Variant {
	return Variant{Name: "synch-SGD (Deep500)", opts: []collective.Option{
		collective.WithMode(collective.Sync), collective.WithChunks(4)}}
}

// SynchHorovod models the Horovod baseline (§3): a negotiation round
// (readiness consensus) followed by one fused allreduce.
func SynchHorovod() Variant {
	return Variant{Name: "synch-SGD (Horovod)", opts: []collective.Option{
		collective.WithMode(collective.Sync), collective.WithNegotiation()}}
}

// EagerSolo is eager-SGD with solo allreduce (§4.1): wait-free, fastest,
// lowest expected participation. syncEvery > 0 averages the model replicas
// every that many steps to bound divergence (§5).
func EagerSolo(syncEvery int) Variant {
	return Variant{Name: "eager-SGD (solo)", syncEvery: syncEvery,
		opts: []collective.Option{collective.WithMode(collective.Solo)}}
}

// EagerMajority is eager-SGD with majority allreduce (§4.2): at least half
// the ranks contribute fresh gradients per round in expectation.
func EagerMajority(syncEvery int) Variant {
	return Variant{Name: "eager-SGD (majority)", syncEvery: syncEvery,
		opts: []collective.Option{collective.WithMode(collective.Majority)}}
}

// EagerQuorum is eager-SGD with quorum allreduce (§8): candidates initiators
// per round interpolate between majority (1) and solo (Ranks).
func EagerQuorum(candidates, syncEvery int) Variant {
	return Variant{Name: fmt.Sprintf("eager-SGD (quorum-%d)", candidates), syncEvery: syncEvery,
		opts: []collective.Option{collective.WithMode(collective.Quorum(candidates))}}
}

// Imbalance models the system-caused load imbalance injected per step (§2.3,
// §6.2). The zero value injects nothing; inherent imbalance (variable-length
// batches, §2.1) comes from the workload instead.
type Imbalance struct {
	build func(size int, seed int64) imbalance.Injector
}

// NoImbalance injects no delays.
func NoImbalance() Imbalance { return Imbalance{} }

// RandomDelays delays k random ranks by amountMs paper milliseconds each
// step (the light-imbalance injection of §6.2.1–§6.2.2).
func RandomDelays(k int, amountMs float64) Imbalance {
	return Imbalance{build: func(size int, seed int64) imbalance.Injector {
		return imbalance.RandomSubset{Size: size, K: k, Amount: amountMs, Seed: seed}
	}}
}

// SevereSkew delays every rank between minMs and maxMs with the assignment
// shifting across ranks each step (the severe imbalance of §6.2.3).
func SevereSkew(minMs, maxMs float64) Imbalance {
	return Imbalance{build: func(size int, seed int64) imbalance.Injector {
		return imbalance.ShiftedSevere{Size: size, MinMs: minMs, MaxMs: maxMs}
	}}
}

// LinearSkew delays rank r by (r+1)*stepMs every step (the microbenchmark
// skew of §6.1).
func LinearSkew(stepMs float64) Imbalance {
	return Imbalance{build: func(size int, seed int64) imbalance.Injector {
		return imbalance.LinearSkew{StepMs: stepMs}
	}}
}

// CloudNoise delays k random ranks per step by the excess of a sample from
// the Fig. 4 cloud batch-runtime distribution over its minimum — the
// multi-tenant "noise tail" of §2.3.
func CloudNoise(k int) Imbalance {
	return Imbalance{build: func(size int, seed int64) imbalance.Injector {
		return cloudInjector{size: size, k: k, dist: imbalance.CloudBatchRuntime(), seed: seed}
	}}
}

// cloudInjector implements the cloud noise tail as an imbalance.Injector.
type cloudInjector struct {
	size, k int
	dist    imbalance.Distribution
	seed    int64
}

func (c cloudInjector) Name() string { return "cloud-noise" }

func (c cloudInjector) Delay(step, rank int) float64 {
	rng := rand.New(rand.NewSource(c.seed ^ int64(step)*104729))
	perm := rng.Perm(c.size)
	for i := 0; i < c.k && i < c.size; i++ {
		if perm[i] == rank {
			return c.dist.Sample(rng) - c.dist.MinMs
		}
	}
	return 0
}

// Spec describes one training run.
type Spec struct {
	// Name labels the run; empty means the variant's name.
	Name string
	// Ranks is the number of data-parallel workers (goroutines over the
	// world's transport). Required.
	Ranks int
	// Steps is the number of optimizer steps every rank executes. Required.
	Steps int
	// Workload is the model + dataset to train. Required.
	Workload Workload
	// Variant is the distributed SGD algorithm; the zero value is SynchSGD.
	Variant Variant
	// Imbalance is the injected per-step delay model; the zero value is none.
	Imbalance Imbalance
	// ClockScale converts paper milliseconds into real time; 0 means 0.01
	// (delays replay at 1% of real time).
	ClockScale float64
	// BaseStepMs models the per-step compute cost, in paper milliseconds, of
	// the system the stand-in model represents. Zero disables it.
	BaseStepMs float64
	// LearningRate overrides the workload's default when positive.
	LearningRate float64
	// Overlap enables the bucketed gradient exchange: layer-aligned buckets
	// are submitted as the backward pass produces them, overlapping the tail
	// of backprop with the head of communication, and each bucket's result is
	// applied as it lands (collective.WithOverlap under the hood).
	Overlap bool
	// BucketElems coalesces adjacent layer segments into buckets of at least
	// this many elements when Overlap is on (collective.WithBucketElems);
	// 0 keeps one bucket per layer.
	BucketElems int
	// EvalEvery inserts a held-out evaluation every that many steps (0 =
	// final evaluation only).
	EvalEvery int
	// Seed drives dataset generation, batch sampling, initiator selection,
	// and injection schedules. Runs with equal specs are reproducible.
	Seed int64
	// World configures the collective world the run executes on (transport,
	// base port). Empty means in-process.
	World []collective.Option
	// Faults runs the world's transport through a deterministic fault
	// injector executing the scenario (collective.WithFaults): per-link
	// drops, delays, reordering, partitions, and scripted rank crashes. The
	// run advances each rank's crash-at-step counter once per optimizer
	// step, and a scripted crash does not fail the run — survivors' results
	// stand. Combine with PeerDeadline so the stack detects the injected
	// failures.
	Faults *collective.FaultScenario
	// PeerDeadline enables rank-failure tolerance with the given
	// failure-detector deadline (collective.WithPeerDeadline): eager
	// variants drop a dead rank from subsequent rounds and keep training
	// with the survivors; synchronous variants abort with a typed error
	// instead of hanging. Zero disables it.
	PeerDeadline time.Duration
	// Churn scripts membership changes — ranks joining, leaving, or being
	// replaced — executed at step boundaries while training runs (the elastic
	// path). Combine ChurnReplace with a Faults scenario that crashes the
	// victim and a PeerDeadline that detects it. Joiners train the remaining
	// steps from the state transferred at their epoch boundary.
	Churn []ChurnEvent
}

// ChurnEvent scripts one membership change during a run; see core.ChurnEvent.
type ChurnEvent = core.ChurnEvent

// Churn kinds, re-exported for Spec.Churn.
const (
	ChurnJoin    = core.ChurnJoin
	ChurnLeave   = core.ChurnLeave
	ChurnReplace = core.ChurnReplace
)

// Result aggregates one run's headline measurements (rank 0's view).
type Result struct {
	// Name echoes the run label.
	Name string
	// Throughput is the average steps per second of training time.
	Throughput float64
	// TrainingTime is the cumulative step time, evaluation excluded.
	TrainingTime time.Duration
	// Loss is the final held-out loss; Top1/Top5 the final held-out
	// accuracies (zero for regression workloads).
	Loss, Top1, Top5 float64
	// MeanActiveRanks is the mean number of fresh contributions per
	// reduction observed by rank 0 (the NAP metric of Fig. 9).
	MeanActiveRanks float64
}

// Run executes the spec and returns rank 0's results. All ranks run as
// goroutines over one world, which is closed — releasing every rank's
// transport resources — before Run returns.
func Run(spec Spec) (*Result, error) {
	if spec.Ranks <= 0 || spec.Steps <= 0 {
		return nil, fmt.Errorf("train: spec requires positive Ranks and Steps")
	}
	if spec.Workload == nil {
		return nil, fmt.Errorf("train: spec requires a Workload")
	}
	v := spec.Variant
	if v.Name == "" {
		v = SynchSGD()
	}
	name := spec.Name
	if name == "" {
		name = v.Name
	}
	scale := spec.ClockScale
	if scale <= 0 {
		scale = 0.01
	}
	clock := imbalance.ScaledClock(scale)
	buildTask, costModel, defaultLR, err := spec.Workload.prepare(spec.Seed)
	if err != nil {
		return nil, err
	}
	lr := spec.LearningRate
	if lr <= 0 {
		lr = defaultLR
	}
	var injector imbalance.Injector = imbalance.None{}
	if spec.Imbalance.build != nil {
		injector = spec.Imbalance.build(spec.Ranks, spec.Seed)
	}

	worldOpts := append([]collective.Option{}, spec.World...)
	if spec.Faults != nil {
		worldOpts = append(worldOpts, collective.WithFaults(*spec.Faults))
	}
	if spec.PeerDeadline > 0 {
		// World-level too: the elastic transition protocol (drains, state
		// transfer) uses the deadline to outwait dead ranks.
		worldOpts = append(worldOpts, collective.WithPeerDeadline(spec.PeerDeadline))
	}
	res, err := core.Run(core.RunConfig{
		Name:           name,
		Size:           spec.Ranks,
		Steps:          spec.Steps,
		EvalEverySteps: spec.EvalEvery,
		FinalSync:      true,
		WorldOptions:   worldOpts,
		Churn:          spec.Churn,
		Build: func(rank int, n *collective.Node) (*core.Trainer, error) {
			task := buildTask(rank, spec.Ranks)
			opts := append([]collective.Option{collective.WithSeed(spec.Seed)}, v.opts...)
			if spec.PeerDeadline > 0 {
				opts = append(opts, collective.WithPeerDeadline(spec.PeerDeadline))
			}
			if spec.Overlap {
				bt, ok := task.(core.BucketedTask)
				if !ok {
					return nil, fmt.Errorf("train: workload task %T does not support the overlapped exchange", task)
				}
				opts = append(opts,
					collective.WithOverlap(),
					collective.WithBucketElems(spec.BucketElems),
					// Eager reducers fix the bucket layout at construction;
					// sync reducers ignore it.
					collective.WithBucketLayout(core.BucketLayout(bt, spec.BucketElems)...))
			}
			ex, err := n.Reducer(task.NumParams(), opts...)
			if err != nil {
				return nil, err
			}
			return core.NewTrainer(core.Config{
				Node:            n,
				Task:            task,
				Exchanger:       ex,
				Optimizer:       optimizer.NewSGD(lr),
				Injector:        injector,
				Clock:           clock,
				BaseStepPaperMs: spec.BaseStepMs,
				CostModel:       costModel,
				SyncEverySteps:  v.syncEvery,
				PeerDeadline:    spec.PeerDeadline,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Name:            res.Name,
		Throughput:      res.Throughput,
		TrainingTime:    res.TrainingTime,
		Loss:            res.Final.Loss,
		Top1:            res.Final.Top1,
		Top5:            res.Final.Top5,
		MeanActiveRanks: res.MeanActiveProcesses,
	}, nil
}
