package train

import (
	"fmt"

	"eagersgd/internal/core"
	"eagersgd/internal/data"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/nn"
)

// evalFraction is the share of every generated dataset held out for
// evaluation.
const evalFraction = 0.125

// Workload is a model + synthetic dataset a Spec trains. Constructors:
// Hyperplane, Images, Video. Implementations are opaque; a workload is
// prepared once per Run so every rank trains on the same generated data.
type Workload interface {
	// prepare generates the datasets and returns a per-rank task builder,
	// the inherent-imbalance cost model (nil for balanced workloads), and
	// the workload's default learning rate. It fails when the configured
	// sample count cannot support a train/eval split.
	prepare(seed int64) (func(rank, size int) core.Task, *imbalance.SequenceCostModel, float64, error)
}

// splitPoint returns the train/eval boundary for n samples, or an error when
// the held-out portion would be empty.
func splitPoint(workload string, n int) (int, error) {
	evalN := int(float64(n) * evalFraction)
	if evalN < 1 {
		return 0, fmt.Errorf("train: %s needs at least %d samples for a train/eval split, got %d",
			workload, int(1/evalFraction), n)
	}
	return n - evalN, nil
}

// HyperplaneConfig configures the linear-regression workload of §6.2.1
// (Fig. 10): a one-layer MLP fitting a noisy hyperplane.
type HyperplaneConfig struct {
	// Dim is the input dimension, Samples the generated dataset size, Batch
	// the per-rank minibatch size. Zero fields take the listed defaults
	// (128, 2048, 16).
	Dim, Samples, Batch int
	// Noise is the target noise level; zero means 0.05.
	Noise float64
}

// Hyperplane builds the hyperplane regression workload.
func Hyperplane(cfg HyperplaneConfig) Workload {
	setDefault(&cfg.Dim, 128)
	setDefault(&cfg.Samples, 2048)
	setDefault(&cfg.Batch, 16)
	if cfg.Noise <= 0 {
		cfg.Noise = 0.05
	}
	return hyperplaneWorkload{cfg}
}

type hyperplaneWorkload struct{ cfg HyperplaneConfig }

func (w hyperplaneWorkload) prepare(seed int64) (func(rank, size int) core.Task, *imbalance.SequenceCostModel, float64, error) {
	cut, err := splitPoint("hyperplane", w.cfg.Samples)
	if err != nil {
		return nil, nil, 0, err
	}
	full := data.Hyperplane(w.cfg.Dim, w.cfg.Samples, w.cfg.Noise, seed+10)
	train := &data.RegressionDataset{Inputs: full.Inputs[:cut], Targets: full.Targets[:cut], Coefficients: full.Coefficients}
	eval := &data.RegressionDataset{Inputs: full.Inputs[cut:], Targets: full.Targets[cut:], Coefficients: full.Coefficients}
	return func(rank, size int) core.Task {
		net := nn.NewNetwork(nn.MSE{}, nn.NewDense(w.cfg.Dim, 1))
		return core.NewRegressionTask("hyperplane", net, train, eval, w.cfg.Batch, rank, size, seed+11)
	}, nil, 0.05, nil
}

// ImagesConfig configures the image-classification stand-in of §6.2.2–§6.2.3
// (Figs. 11 and 12): a two-layer MLP on Gaussian class blobs.
type ImagesConfig struct {
	// Classes, Dim, Hidden, Samples, and Batch default to 8, 24, 24, 160,
	// and 8 when zero.
	Classes, Dim, Hidden, Samples, Batch int
	// Spread is the blob standard deviation; zero means 0.6.
	Spread float64
}

// Images builds the image-classification workload.
func Images(cfg ImagesConfig) Workload {
	setDefault(&cfg.Classes, 8)
	setDefault(&cfg.Dim, 24)
	setDefault(&cfg.Hidden, 24)
	setDefault(&cfg.Samples, 160)
	setDefault(&cfg.Batch, 8)
	if cfg.Spread <= 0 {
		cfg.Spread = 0.6
	}
	return imagesWorkload{cfg}
}

type imagesWorkload struct{ cfg ImagesConfig }

func (w imagesWorkload) prepare(seed int64) (func(rank, size int) core.Task, *imbalance.SequenceCostModel, float64, error) {
	perClass := w.cfg.Samples / w.cfg.Classes
	if perClass < 1 {
		return nil, nil, 0, fmt.Errorf("train: images needs at least one sample per class, got %d samples for %d classes",
			w.cfg.Samples, w.cfg.Classes)
	}
	full := data.Blobs(w.cfg.Classes, w.cfg.Dim, perClass, w.cfg.Spread, seed+20)
	cut, err := splitPoint("images", full.Len())
	if err != nil {
		return nil, nil, 0, err
	}
	train := &data.ClassificationDataset{Inputs: full.Inputs[:cut], Labels: full.Labels[:cut], Classes: w.cfg.Classes}
	eval := &data.ClassificationDataset{Inputs: full.Inputs[cut:], Labels: full.Labels[cut:], Classes: w.cfg.Classes}
	return func(rank, size int) core.Task {
		net := nn.NewNetwork(nn.SoftmaxCrossEntropy{},
			nn.NewDense(w.cfg.Dim, w.cfg.Hidden), nn.NewTanh(w.cfg.Hidden), nn.NewDense(w.cfg.Hidden, w.cfg.Classes))
		return core.NewClassificationTask("images", net, train, eval, w.cfg.Batch, rank, size, seed+21)
	}, nil, 0.1, nil
}

// VideoConfig configures the video-classification workload of §2.1 and §6.3
// (Fig. 13): an LSTM over UCF101-shaped variable-length sequences, whose
// per-batch cost differs across ranks at every step (inherent imbalance).
type VideoConfig struct {
	// Classes, FeatDim, Hidden, Samples, and Batch default to 5, 8, 16, 300,
	// and 4 when zero.
	Classes, FeatDim, Hidden, Samples, Batch int
	// MinFrames, MaxFrames, and MedianFrames shape the UCF101-like length
	// distribution; they default to 5, 60, and 14.
	MinFrames, MaxFrames, MedianFrames int
	// Noise is the feature noise level; zero means 0.3.
	Noise float64
	// BaseMs and PerFrameMs parameterize the inherent-imbalance cost model
	// (paper milliseconds per batch and per frame); they default to 20 and 2.
	BaseMs, PerFrameMs float64
}

// Video builds the video LSTM workload.
func Video(cfg VideoConfig) Workload {
	setDefault(&cfg.Classes, 5)
	setDefault(&cfg.FeatDim, 8)
	setDefault(&cfg.Hidden, 16)
	setDefault(&cfg.Samples, 300)
	setDefault(&cfg.Batch, 4)
	setDefault(&cfg.MinFrames, 5)
	setDefault(&cfg.MaxFrames, 60)
	setDefault(&cfg.MedianFrames, 14)
	if cfg.Noise <= 0 {
		cfg.Noise = 0.3
	}
	if cfg.BaseMs <= 0 {
		cfg.BaseMs = 20
	}
	if cfg.PerFrameMs <= 0 {
		cfg.PerFrameMs = 2
	}
	return videoWorkload{cfg}
}

type videoWorkload struct{ cfg VideoConfig }

func (w videoWorkload) prepare(seed int64) (func(rank, size int) core.Task, *imbalance.SequenceCostModel, float64, error) {
	cut, err := splitPoint("video", w.cfg.Samples)
	if err != nil {
		return nil, nil, 0, err
	}
	full := data.Sequences(data.SequenceConfig{
		Classes: w.cfg.Classes, FeatDim: w.cfg.FeatDim, Samples: w.cfg.Samples, Noise: w.cfg.Noise,
		Lengths: data.UCF101LengthDistribution{
			MinFrames: w.cfg.MinFrames, MaxFrames: w.cfg.MaxFrames, Median: float64(w.cfg.MedianFrames), Sigma: 0.5},
		Seed: seed + 40,
	})
	train := &data.SequenceDataset{Sequences: full.Sequences[:cut], Labels: full.Labels[:cut], Classes: w.cfg.Classes, FeatDim: w.cfg.FeatDim}
	eval := &data.SequenceDataset{Sequences: full.Sequences[cut:], Labels: full.Labels[cut:], Classes: w.cfg.Classes, FeatDim: w.cfg.FeatDim}
	cost := &imbalance.SequenceCostModel{BaseMs: w.cfg.BaseMs, PerUnitMs: w.cfg.PerFrameMs}
	return func(rank, size int) core.Task {
		model := nn.NewLSTMClassifier(w.cfg.FeatDim, w.cfg.Hidden, w.cfg.Classes)
		return core.NewSequenceTask("video-lstm", model, train, eval, w.cfg.Batch, rank, size, seed+41)
	}, cost, 0.08, nil
}

func setDefault(v *int, def int) {
	if *v <= 0 {
		*v = def
	}
}
