package train_test

import (
	"testing"

	"eagersgd/train"
)

func TestRunValidation(t *testing.T) {
	if _, err := train.Run(train.Spec{}); err == nil {
		t.Fatal("expected error for empty spec")
	}
	if _, err := train.Run(train.Spec{Ranks: 2, Steps: 2}); err == nil {
		t.Fatal("expected error for missing workload")
	}
	// Too few samples for an eval split must be an error, not a NaN result.
	if _, err := train.Run(train.Spec{Ranks: 2, Steps: 2,
		Workload: train.Hyperplane(train.HyperplaneConfig{Samples: 7}),
	}); err == nil {
		t.Fatal("expected error for sample count too small to split")
	}
	// Fewer samples than classes must be an error, not a panic.
	if _, err := train.Run(train.Spec{Ranks: 2, Steps: 2,
		Workload: train.Images(train.ImagesConfig{Classes: 8, Samples: 4}),
	}); err == nil {
		t.Fatal("expected error for fewer samples than classes")
	}
}

// TestRunEveryVariant drives each SGD variant through a short hyperplane run
// on the public façade, checking the headline metrics come back sane.
func TestRunEveryVariant(t *testing.T) {
	workload := train.Hyperplane(train.HyperplaneConfig{Dim: 8, Samples: 64, Batch: 4})
	for _, v := range []train.Variant{
		train.SynchSGD(),
		train.SynchDeep500(),
		train.SynchHorovod(),
		train.EagerSolo(4),
		train.EagerMajority(4),
		train.EagerQuorum(2, 4),
	} {
		res, err := train.Run(train.Spec{
			Ranks:      3,
			Steps:      8,
			Workload:   workload,
			Variant:    v,
			Imbalance:  train.RandomDelays(1, 5),
			ClockScale: 0.05,
			Seed:       3,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if res.Throughput <= 0 || res.TrainingTime <= 0 {
			t.Fatalf("%s: throughput %v, time %v", v.Name, res.Throughput, res.TrainingTime)
		}
		if res.MeanActiveRanks <= 0 || res.MeanActiveRanks > 3 {
			t.Fatalf("%s: mean active ranks %v", v.Name, res.MeanActiveRanks)
		}
		if res.Loss <= 0 {
			t.Fatalf("%s: final loss %v", v.Name, res.Loss)
		}
	}
}

// TestWorkloadsTrain smoke-tests the classification and video workloads with
// the recommended eager variants and their imbalance models.
func TestWorkloadsTrain(t *testing.T) {
	images, err := train.Run(train.Spec{
		Ranks:     3,
		Steps:     6,
		Workload:  train.Images(train.ImagesConfig{Classes: 3, Dim: 6, Hidden: 8, Samples: 48, Batch: 4}),
		Variant:   train.EagerSolo(3),
		Imbalance: train.CloudNoise(1),
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if images.Top1 < 0 || images.Top1 > 1 || images.Top5 < images.Top1 {
		t.Fatalf("images accuracies top1=%v top5=%v", images.Top1, images.Top5)
	}
	video, err := train.Run(train.Spec{
		Ranks:    2,
		Steps:    5,
		Workload: train.Video(train.VideoConfig{Classes: 3, FeatDim: 4, Hidden: 6, Samples: 40, Batch: 2}),
		Variant:  train.EagerMajority(5),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if video.Top5 < video.Top1 {
		t.Fatalf("video accuracies top1=%v top5=%v", video.Top1, video.Top5)
	}
}
