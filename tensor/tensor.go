// Package tensor is the public view of the dense numerical containers the
// eager-SGD library operates on: flat float64 vectors and row-major matrices.
//
// The types are aliases of the internal implementation, so values cross the
// public/internal boundary without conversion: a Vector returned by
// collective.Reducer.Reduce is the same type the internal engines exchanged.
// A Vector is a plain []float64 underneath; the methods add the small set of
// BLAS-like kernels (axpy, scal, dot, norms) the library is built on.
package tensor

import itensor "eagersgd/internal/tensor"

// Vector is a dense one-dimensional array of float64 values. It aliases a
// plain []float64, so tensor.Vector{1, 2, 3} and v[i] work as for any slice.
type Vector = itensor.Vector

// Matrix is a dense row-major matrix backed by a flat Vector.
type Matrix = itensor.Matrix

// ErrShape is returned by matrix constructors when dimensions are invalid.
var ErrShape = itensor.ErrShape

// NewVector returns a zero-initialized vector of length n.
func NewVector(n int) Vector { return itensor.NewVector(n) }

// NewMatrix allocates a rows x cols zero matrix.
func NewMatrix(rows, cols int) *Matrix { return itensor.NewMatrix(rows, cols) }

// MatrixFromData wraps an existing flat slice as a rows x cols matrix without
// copying. It returns an error if the slice length does not match.
func MatrixFromData(rows, cols int, data Vector) (*Matrix, error) {
	return itensor.MatrixFromData(rows, cols, data)
}

// ChunkBounds returns the [start, end) bounds of chunk i when a vector of
// length n is split into p chunks with the same policy as Vector.Chunk.
func ChunkBounds(n, p, i int) (int, int) { return itensor.ChunkBounds(n, p, i) }

// GetVector leases a vector of length n from the process-wide vector pool the
// collective engines draw their wire buffers from. The contents are arbitrary;
// use GetVectorZero when zeros are assumed. Release the lease with PutVector
// when done — or don't: an unreleased vector is simply garbage collected.
func GetVector(n int) Vector { return itensor.GetVector(n) }

// GetVectorZero leases a zero-initialized vector of length n from the pool.
func GetVectorZero(n int) Vector { return itensor.GetVectorZero(n) }

// GetVectorCopy leases a vector holding a copy of src.
func GetVectorCopy(src Vector) Vector { return itensor.GetVectorCopy(src) }

// PutVector returns a vector to the pool. Results handed out by the library —
// collective.Result.Sum, for example — are pool-leased, so a training loop
// that is done with a result may release it here to keep the steady state
// allocation-free. The caller must not touch v (or anything aliasing it)
// afterwards, and must release a given lease at most once.
func PutVector(v Vector) { itensor.PutVector(v) }
