// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment from
// internal/harness and reports the headline quantities of that figure as
// custom benchmark metrics (speedups, latencies, NAP, accuracies), so
// `go test -bench=. -benchmem` regenerates the complete results table.
//
// Benchmarks default to the harness's full scale; set -short to use the quick
// scale. Absolute numbers differ from the paper (the substrate is a CPU
// simulator); the reproduced quantities are the relative ones — who wins and
// by roughly what factor.
package eagersgd_test

import (
	"testing"

	"eagersgd/harness"
)

func benchConfig(b *testing.B) harness.Config {
	if testing.Short() {
		return harness.QuickConfig()
	}
	return harness.DefaultConfig()
}

// runExperiment runs the experiment once per benchmark iteration and reports
// the selected values as metrics.
func runExperiment(b *testing.B, id string, metrics map[string]string) *harness.Report {
	b.Helper()
	cfg := benchConfig(b)
	var last *harness.Report
	for i := 0; i < b.N; i++ {
		r, err := harness.RunByID(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = r
	}
	for valueKey, metricName := range metrics {
		b.ReportMetric(last.Value(valueKey), metricName)
	}
	return last
}

// BenchmarkFig2VideoWorkload regenerates Fig. 2: the UCF101 video length
// distribution and the LSTM batch runtime distribution.
func BenchmarkFig2VideoWorkload(b *testing.B) {
	runExperiment(b, "fig2", map[string]string{
		"video/mean-runtime-ms": "batch-mean-ms",
		"video/std-runtime-ms":  "batch-std-ms",
		"video/max-frames":      "max-frames",
	})
}

// BenchmarkFig3TransformerWorkload regenerates Fig. 3: the Transformer batch
// runtime distribution.
func BenchmarkFig3TransformerWorkload(b *testing.B) {
	runExperiment(b, "fig3", map[string]string{
		"transformer/mean-runtime-ms": "batch-mean-ms",
		"transformer/std-runtime-ms":  "batch-std-ms",
	})
}

// BenchmarkFig4CloudWorkload regenerates Fig. 4: the cloud ResNet-50 batch
// runtime distribution.
func BenchmarkFig4CloudWorkload(b *testing.B) {
	runExperiment(b, "fig4", map[string]string{
		"cloud/mean-runtime-ms": "batch-mean-ms",
		"cloud/std-runtime-ms":  "batch-std-ms",
	})
}

// BenchmarkTable1Networks regenerates Table 1 (paper and reproduction
// configurations).
func BenchmarkTable1Networks(b *testing.B) {
	runExperiment(b, "table1", nil)
}

// BenchmarkFig9PartialAllreduceLatency regenerates Fig. 9: average latency of
// the synchronous, solo, and majority allreduce under linear skew, plus the
// number of active processes.
func BenchmarkFig9PartialAllreduceLatency(b *testing.B) {
	runExperiment(b, "fig9", map[string]string{
		"speedup/solo-mean":     "solo-speedup-x",
		"speedup/majority-mean": "majority-speedup-x",
	})
}

// BenchmarkFig10Hyperplane regenerates Fig. 10: hyperplane regression
// throughput and loss under 200/300/400 ms injections.
func BenchmarkFig10Hyperplane(b *testing.B) {
	metrics := map[string]string{
		"speedup/eager-solo/200": "speedup-200ms-x",
		"loss/eager-solo/200":    "eager-loss-200ms",
		"loss/synch-deep500/200": "synch-loss-200ms",
	}
	if !testing.Short() {
		metrics["speedup/eager-solo/300"] = "speedup-300ms-x"
		metrics["speedup/eager-solo/400"] = "speedup-400ms-x"
	}
	runExperiment(b, "fig10", metrics)
}

// BenchmarkFig11ImageNetLight regenerates Fig. 11: ImageNet-like
// classification with light injected imbalance on 64 processes.
func BenchmarkFig11ImageNetLight(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"speedup/eager-solo/300":    "speedup-vs-deep500-300ms-x",
		"speedup/synch-horovod/300": "horovod-vs-deep500-300ms-x",
		"top1/eager-solo/300":       "eager-top1-300ms",
		"top1/synch-deep500/300":    "deep500-top1-300ms",
	})
}

// BenchmarkFig12Cifar10Severe regenerates Fig. 12: CIFAR-like classification
// under severe, shifting skew.
func BenchmarkFig12Cifar10Severe(b *testing.B) {
	runExperiment(b, "fig12", map[string]string{
		"speedup/eager-majority": "majority-speedup-x",
		"speedup/eager-solo":     "solo-speedup-x",
		"top1/synch-horovod":     "synch-top1",
		"top1/eager-majority":    "majority-top1",
		"top1/eager-solo":        "solo-top1",
	})
}

// BenchmarkFig13VideoLSTM regenerates Fig. 13: LSTM video classification with
// inherent load imbalance.
func BenchmarkFig13VideoLSTM(b *testing.B) {
	runExperiment(b, "fig13", map[string]string{
		"speedup/eager-majority": "majority-speedup-x",
		"speedup/eager-solo":     "solo-speedup-x",
		"top1/synch-horovod":     "synch-top1",
		"top1/eager-majority":    "majority-top1",
		"top1/eager-solo":        "solo-top1",
	})
}

// BenchmarkScalingSummary regenerates the strong-scaling observations of
// §6.2.1.
func BenchmarkScalingSummary(b *testing.B) {
	runExperiment(b, "scaling", map[string]string{
		"speedup/eager-solo":    "eager-strong-scaling-x",
		"speedup/synch-deep500": "synch-strong-scaling-x",
	})
}

// BenchmarkQuorumSpectrum regenerates the §8 ablation: the quorum allreduce
// spectrum between majority and solo.
func BenchmarkQuorumSpectrum(b *testing.B) {
	runExperiment(b, "quorum", map[string]string{
		"nap/candidates-1": "nap-majority-like",
	})
}
