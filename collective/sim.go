package collective

import (
	"time"

	"eagersgd/internal/simnet"
)

// SimModel models a latency or compute-skew distribution of the simulated
// transport. Values are built with SimConstant, SimUniform, SimPareto,
// SimTrace, SimTraceAligned, or parsed from a spec string with ParseSimModel;
// the same vocabulary parameterizes the standalone sweep driver
// (cmd/simsweep).
type SimModel = simnet.Model

// SimConstant models a fixed duration every draw.
func SimConstant(d time.Duration) SimModel { return simnet.Constant(d) }

// SimUniform models durations uniform in [lo, hi] (inclusive).
func SimUniform(lo, hi time.Duration) SimModel { return simnet.Uniform(lo, hi) }

// SimPareto models a heavy-tailed Pareto distribution with the given scale
// (minimum value) and shape alpha, truncated at cap — the straggler
// distribution of the paper's skew experiments.
func SimPareto(scale time.Duration, alpha float64, cap time.Duration) SimModel {
	return simnet.Pareto(scale, alpha, cap)
}

// SimTrace replays the given samples cyclically; each entity starts at a
// seed-rotated offset, decorrelating the ranks.
func SimTrace(samples []time.Duration) SimModel { return simnet.Trace(samples) }

// SimTraceAligned replays the samples cyclically with no per-entity rotation,
// so every rank stalls in the same rounds — the coordinated-straggler
// scenario.
func SimTraceAligned(samples []time.Duration) SimModel { return simnet.TraceAligned(samples) }

// ParseSimModel parses a model spec string: "constant:DUR", "uniform:LO,HI",
// "pareto:SCALE,ALPHA,CAP", "trace:DUR,...", "tracealigned:DUR,...", or a
// bare duration (meaning constant).
func ParseSimModel(spec string) (SimModel, error) { return simnet.ParseModel(spec) }

// SimConfig parameterizes the Sim transport's virtual network.
type SimConfig struct {
	// Seed is the root seed every per-entity stream (per-link latency, per-rank
	// skew) derives from. Zero is a valid seed, distinct from all others.
	Seed uint64
	// Latency models per-link message latency; nil means instant delivery.
	Latency SimModel
	// Skew models per-rank compute time per virtual compute advance; nil means
	// none.
	Skew SimModel
}

// WithSimConfig parameterizes the Sim transport (seed, latency model, skew
// model). Ignored by the other transports; the zero value — instant delivery,
// no skew — is the default, so WithTransport(Sim) alone is valid.
func WithSimConfig(sc SimConfig) Option {
	return func(c *config) { c.sim = sc }
}

// SimNow returns the simulated world's global virtual clock. ok is false when
// the world does not run on the Sim transport.
func (w *World) SimNow() (d time.Duration, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.gen == nil || w.gen.simHub == nil {
		return 0, false
	}
	return w.gen.simHub.Now(), true
}
