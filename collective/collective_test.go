// Package collective_test exercises the public API exactly as an external
// program would: only public packages are imported.
package collective_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eagersgd/collective"
	"eagersgd/tensor"
)

// runRanks calls fn concurrently for every rank and fails the test on error
// or on a deadlock (no completion within the timeout).
func runRanks(t *testing.T, size int, fn func(rank int) error) {
	t.Helper()
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(r)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("ranks did not finish (deadlock)")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestReduceRoundTripEveryModeAndTransport drives every reduction mode over
// both transports through the one Reducer interface: several eager (or sync)
// rounds followed by a full synchronization round, with every rank
// contributing an all-ones vector each round.
func TestReduceRoundTripEveryModeAndTransport(t *testing.T) {
	const (
		ranks     = 4
		dim       = 6
		rounds    = 6
		syncEvery = 3 // calls 3 and 6 are full synchronizations
	)
	modes := []struct {
		name string
		mode collective.Mode
	}{
		{"sync", collective.Sync},
		{"solo", collective.Solo},
		{"majority", collective.Majority},
		{"quorum", collective.Quorum(2)},
	}
	transports := []struct {
		name string
		opts []collective.Option
	}{
		{"inproc", []collective.Option{collective.WithTransport(collective.Inproc)}},
		{"tcp", []collective.Option{collective.WithTransport(collective.TCP)}},
		{"shm", []collective.Option{collective.WithTransport(collective.Shm)}},
		{"mixed", []collective.Option{
			collective.WithTransport(collective.TCP),
			// Ranks 0,1 share a host (rings), 2,3 share another; the
			// cross-host pairs stay on TCP.
			collective.WithHosts(0, 0, 1, 1),
		}},
		{"sim", []collective.Option{
			collective.WithTransport(collective.Sim),
			collective.WithSimConfig(collective.SimConfig{
				Seed:    7,
				Latency: collective.SimUniform(10*time.Microsecond, 50*time.Microsecond),
			}),
		}},
	}
	for ti, tr := range transports {
		for mi, m := range modes {
			t.Run(tr.name+"/"+m.name, func(t *testing.T) {
				opts := append([]collective.Option{
					collective.WithMode(m.mode),
					collective.WithSeed(42),
					collective.WithSyncEvery(syncEvery),
					// Distinct ports per subtest so TCP listeners never collide.
					collective.WithBasePort(30100 + 100*ti + 10*mi),
				}, tr.opts...)
				world, err := collective.NewWorld(ranks, opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer world.Close()

				// results[round][rank] collects every observation for the
				// cross-rank checks on synchronization rounds.
				results := make([][]collective.Result, rounds)
				for i := range results {
					results[i] = make([]collective.Result, ranks)
				}
				runRanks(t, ranks, func(rank int) error {
					red, err := world.Node(rank).Reducer(dim)
					if err != nil {
						return err
					}
					defer red.Close()
					for round := 0; round < rounds; round++ {
						grad := tensor.NewVector(dim)
						grad.Fill(1)
						res, err := red.Reduce(context.Background(), grad)
						if err != nil {
							return fmt.Errorf("round %d: %w", round, err)
						}
						if len(res.Sum) != dim {
							return fmt.Errorf("round %d: sum length %d, want %d", round, len(res.Sum), dim)
						}
						if res.Ranks != ranks {
							return fmt.Errorf("round %d: ranks %d, want %d", round, res.Ranks, ranks)
						}
						for i := 1; i < dim; i++ {
							if res.Sum[i] != res.Sum[0] {
								return fmt.Errorf("round %d: non-uniform sum %v of uniform contributions", round, res.Sum)
							}
						}
						if res.Sum[0] < 1 || res.Sum[0] > float64(rounds*ranks) {
							return fmt.Errorf("round %d: sum %v out of range", round, res.Sum[0])
						}
						if res.ActiveRanks < 0 || res.ActiveRanks > ranks {
							return fmt.Errorf("round %d: active ranks %d out of range", round, res.ActiveRanks)
						}
						results[round][rank] = res
					}
					return nil
				})

				for round := 0; round < rounds; round++ {
					fullSync := m.mode == collective.Sync || (round+1)%syncEvery == 0
					if !fullSync {
						continue
					}
					// Synchronous rounds include every rank's fresh
					// contribution and agree bit-exactly across ranks.
					for rank := 0; rank < ranks; rank++ {
						res := results[round][rank]
						if res.ActiveRanks != ranks {
							t.Fatalf("round %d rank %d: sync round active=%d, want %d", round, rank, res.ActiveRanks, ranks)
						}
						if !res.Included {
							t.Fatalf("round %d rank %d: sync round must include every contribution", round, rank)
						}
						if !res.Sum.Equal(results[round][0].Sum) {
							t.Fatalf("round %d: rank %d result %v differs from rank 0's %v",
								round, rank, res.Sum, results[round][0].Sum)
						}
					}
				}
				if err := world.Close(); err != nil {
					t.Fatalf("world close: %v", err)
				}
			})
		}
	}
}

// TestSyncReduceMatchesExactSum checks the arithmetic of the Sync mode: with
// rank r contributing the value r+1 everywhere, every rank must see the exact
// total, every round, for each wire algorithm.
func TestSyncReduceMatchesExactSum(t *testing.T) {
	const ranks = 5 // non-power-of-two exercises the fold paths
	const dim = 9
	want := 0.0
	for r := 0; r < ranks; r++ {
		want += float64(r + 1)
	}
	for _, algo := range []collective.Algorithm{collective.RecursiveDoubling, collective.Ring, collective.Rabenseifner} {
		t.Run(algo.String(), func(t *testing.T) {
			world, err := collective.NewWorld(ranks, collective.WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			defer world.Close()
			runRanks(t, ranks, func(rank int) error {
				red, err := world.Node(rank).Reducer(dim)
				if err != nil {
					return err
				}
				defer red.Close()
				for round := 0; round < 3; round++ {
					grad := tensor.NewVector(dim)
					grad.Fill(float64(rank + 1))
					res, err := red.Reduce(context.Background(), grad)
					if err != nil {
						return err
					}
					for i, x := range res.Sum {
						if x != want {
							return fmt.Errorf("round %d elem %d: got %v, want %v", round, i, x, want)
						}
					}
				}
				return nil
			})
		})
	}
}

// TestReduceContextCancellation proves a blocked Reduce returns promptly when
// its context expires: rank 1 never joins the synchronous collective, so rank
// 0 would hang forever without the cancellation plumbing.
func TestReduceContextCancellation(t *testing.T) {
	world, err := collective.NewWorld(2, collective.WithMode(collective.Sync))
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	red, err := world.Node(0).Reducer(4)
	if err != nil {
		t.Fatal(err)
	}
	defer red.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		grad := tensor.NewVector(4)
		grad.Fill(1)
		_, err := red.Reduce(ctx, grad)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("blocked Reduce returned %v, want context.DeadlineExceeded", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v, want prompt return", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked Reduce ignored context cancellation")
	}
}

// TestWorldValidation covers the construction error paths and Close
// idempotency.
func TestWorldValidation(t *testing.T) {
	if _, err := collective.NewWorld(0); err == nil {
		t.Fatal("expected error for empty world")
	}
	world, err := collective.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if world.Size() != 2 || world.Node(1).Rank() != 1 || world.Node(0).Size() != 2 {
		t.Fatal("world shape wrong")
	}
	if len(world.Nodes()) != 2 {
		t.Fatal("Nodes() length wrong")
	}
	if _, err := world.Node(0).Reducer(0); err == nil {
		t.Fatal("expected error for non-positive dimension")
	}
	if err := world.Close(); err != nil {
		t.Fatal(err)
	}
	if err := world.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestModeAndNameStrings pins the naming surface reports rely on.
func TestModeAndNameStrings(t *testing.T) {
	if collective.Sync.String() != "sync" || collective.Solo.String() != "solo" ||
		collective.Majority.String() != "majority" || collective.Quorum(3).String() != "quorum" {
		t.Fatal("mode names wrong")
	}
	if collective.Quorum(3).Candidates() != 3 || collective.Quorum(0).Candidates() != 1 {
		t.Fatal("quorum candidates wrong")
	}
	if collective.Inproc.String() != "inproc" || collective.TCP.String() != "tcp" {
		t.Fatal("transport names wrong")
	}
	world, err := collective.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	for _, tc := range []struct {
		opts []collective.Option
		want string
	}{
		{nil, "synch-sgd"},
		{[]collective.Option{collective.WithChunks(4)}, "synch-sgd (deep500)"},
		{[]collective.Option{collective.WithNegotiation()}, "synch-sgd (horovod)"},
		{[]collective.Option{collective.WithMode(collective.Solo)}, "eager-sgd (solo)"},
		{[]collective.Option{collective.WithMode(collective.Quorum(2))}, "eager-sgd (quorum)"},
	} {
		red, err := world.Node(0).Reducer(3, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got := collective.ReducerName(red); got != tc.want {
			t.Fatalf("name %q, want %q", got, tc.want)
		}
		red.Close()
	}
}
