package collective_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/membership"
	"eagersgd/internal/tensor"
)

// reduceLoop runs one member's training loop: reduce, release, repeat. On a
// peer-failure error it parks until the next committed epoch (the reducer is
// re-minted there) and resumes; on ErrReducerClosed (world closing or the
// member departed) it exits. sawRanks is signalled the first time a result
// covers the wanted rank count.
func reduceLoop(t *testing.T, r collective.Reducer, dim, wantRanks int, epochChanged <-chan struct{}, sawRanks *sync.WaitGroup) {
	t.Helper()
	grad := make(tensor.Vector, dim)
	for i := range grad {
		grad[i] = 1
	}
	signalled := false
	for {
		res, err := r.Reduce(context.Background(), grad)
		if err != nil {
			if errors.Is(err, collective.ErrReducerClosed) {
				return
			}
			// A peer died mid-collective: wait out the reconfiguration, then
			// continue on the re-minted epoch.
			select {
			case <-epochChanged:
				continue
			case <-time.After(10 * time.Second):
				t.Errorf("no epoch transition after failure: %v", err)
				return
			}
		}
		if !signalled && res.Ranks == wantRanks {
			signalled = true
			sawRanks.Done()
		}
		tensor.PutVector(res.Sum)
	}
}

// TestJoinGrowsWorldUnderLoad grows a 4-rank world to 6 in one epoch
// transition while every rank is actively reducing, and asserts that all six
// members then reduce over the 6-rank schedule with zero leaked leases.
func TestJoinGrowsWorldUnderLoad(t *testing.T) {
	const (
		dim      = 96
		oldSize  = 4
		newSize  = 6
		paramDim = 33
	)
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(oldSize)
	if err != nil {
		t.Fatalf("world: %v", err)
	}

	params := make([]float64, paramDim)
	for i := range params {
		params[i] = float64(i) * 0.25
	}
	epochCh := make(chan struct{})
	w.OnMembershipChange(func(collective.Epoch) { close(epochCh) })

	var sawSix sync.WaitGroup
	sawSix.Add(newSize)
	var loops sync.WaitGroup
	for r := 0; r < oldSize; r++ {
		n := w.Node(r)
		n.SetStateProvider(func() []float64 { return append([]float64(nil), params...) })
		red, err := n.Reducer(dim)
		if err != nil {
			t.Fatalf("reducer %d: %v", r, err)
		}
		loops.Add(1)
		go func() {
			defer loops.Done()
			reduceLoop(t, red, dim, newSize, epochCh, &sawSix)
		}()
	}

	joiners, err := w.Reconfigure([]membership.Change{
		{Kind: membership.ChangeJoin, Addr: "j1"},
		{Kind: membership.ChangeJoin, Addr: "j2"},
	})
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if len(joiners) != 2 {
		t.Fatalf("got %d joiner nodes, want 2", len(joiners))
	}
	if ep := w.Membership(); ep.Number != 1 || len(ep.Members) != newSize {
		t.Fatalf("membership after growth = %+v, want epoch 1 with %d members", ep, newSize)
	}
	for _, j := range joiners {
		state := j.InitialState()
		if len(state) != paramDim {
			t.Fatalf("joiner %d received %d state elems, want %d", j.ID(), len(state), paramDim)
		}
		for i := range state {
			if state[i] != params[i] {
				t.Fatalf("joiner %d state[%d] = %v, want %v", j.ID(), i, state[i], params[i])
			}
		}
		red, err := j.Reducer(dim)
		if err != nil {
			t.Fatalf("joiner reducer: %v", err)
		}
		loops.Add(1)
		go func() {
			defer loops.Done()
			reduceLoop(t, red, dim, newSize, epochCh, &sawSix)
		}()
	}

	done := make(chan struct{})
	go func() { sawSix.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("not every member reduced over the 6-rank schedule")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	loops.Wait()
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("grow-under-load leaked %d pool leases", n)
	}
}

// TestReplaceCrashedRank kills a rank mid-run via the deterministic injector,
// Replaces it, and asserts the survivors plus the replacement reduce over the
// new epoch with the dead member's handle retired.
func TestReplaceCrashedRank(t *testing.T) {
	const (
		dim  = 64
		size = 3
	)
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(size,
		collective.WithFaults(collective.FaultScenario{Seed: 7}),
		collective.WithPeerDeadline(300*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("world: %v", err)
	}

	epochCh := make(chan struct{})
	w.OnMembershipChange(func(collective.Epoch) { close(epochCh) })
	var sawThree sync.WaitGroup
	sawThree.Add(size) // two survivors + the replacement
	var loops sync.WaitGroup
	crashedErrs := make(chan error, 1)
	for r := 0; r < size; r++ {
		red, err := w.Node(r).Reducer(dim)
		if err != nil {
			t.Fatalf("reducer %d: %v", r, err)
		}
		r := r
		loops.Add(1)
		go func() {
			defer loops.Done()
			if r == 1 {
				// The victim: reduce until the crash error, then stop like a
				// dead process would.
				grad := make(tensor.Vector, dim)
				for {
					res, err := red.Reduce(context.Background(), grad)
					if err != nil {
						select {
						case crashedErrs <- err:
						default:
						}
						return
					}
					tensor.PutVector(res.Sum)
				}
			}
			reduceLoop(t, red, dim, size, epochCh, &sawThree)
		}()
	}

	time.Sleep(20 * time.Millisecond) // let a few rounds run
	w.FaultInjector().Crash(1)

	// Wait until the health view agrees before reconfiguring, as an external
	// scheduler would.
	deadline := time.Now().Add(5 * time.Second)
	for {
		peers := w.Peers()
		if !peers[1].Up {
			if peers[1].ID != 1 || peers[1].Epoch != 0 {
				t.Fatalf("peer status = %+v, want stable ID 1 at epoch 0", peers[1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health view never marked the crashed rank down")
		}
		time.Sleep(5 * time.Millisecond)
	}

	repl, err := w.Replace(1, "fresh")
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if repl.ID() != membership.RankID(size) {
		t.Fatalf("replacement ID = %d, want %d (identities are never reused)", repl.ID(), size)
	}
	if ep := w.Membership(); ep.Number != 1 || len(ep.Members) != size {
		t.Fatalf("membership after replace = %+v", ep)
	}
	red, err := repl.Reducer(dim)
	if err != nil {
		t.Fatalf("replacement reducer: %v", err)
	}
	loops.Add(1)
	go func() {
		defer loops.Done()
		reduceLoop(t, red, dim, size, epochCh, &sawThree)
	}()

	done := make(chan struct{})
	go func() { sawThree.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("post-replacement collectives never covered the full new epoch")
	}
	select {
	case err := <-crashedErrs:
		if err == nil {
			t.Fatal("crashed rank's reduce returned nil error")
		}
	default:
		t.Fatal("crashed rank never observed its crash")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	loops.Wait()
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("crash-and-replace leaked %d pool leases", n)
	}
}

// TestLeaveShrinksWorld removes a live member at an epoch boundary: the
// departed handle goes dead and the survivors continue over the smaller
// schedule.
func TestLeaveShrinksWorld(t *testing.T) {
	const dim = 32
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(3)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	leaver := w.Node(2)
	if err := w.Leave(leaver.ID()); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if w.Size() != 2 {
		t.Fatalf("size after leave = %d, want 2", w.Size())
	}
	if _, err := leaver.Reducer(dim); !errors.Is(err, collective.ErrNotMember) {
		t.Fatalf("departed member minted a reducer: %v", err)
	}
	var wg sync.WaitGroup
	results := make([]collective.Result, 2)
	for r := 0; r < 2; r++ {
		red, err := w.Node(r).Reducer(dim)
		if err != nil {
			t.Fatalf("reducer: %v", err)
		}
		wg.Add(1)
		go func(r int, red collective.Reducer) {
			defer wg.Done()
			grad := make(tensor.Vector, dim)
			res, err := red.Reduce(context.Background(), grad)
			if err != nil {
				t.Errorf("post-leave reduce: %v", err)
				return
			}
			tensor.PutVector(res.Sum)
			results[r] = res
		}(r, red)
	}
	wg.Wait()
	for r, res := range results {
		if res.Ranks != 2 {
			t.Fatalf("rank %d post-leave Ranks = %d, want 2", r, res.Ranks)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("leave leaked %d pool leases", n)
	}
}

// TestCloseRacingDrain closes the world while a transition is parked in the
// drain phase behind a wedged reduction: the close must unwedge the step,
// abort the transition with ErrWorldClosed, and leak nothing. Run with
// -tags leasedebug to name any leaked lease's minting site.
func TestCloseRacingDrain(t *testing.T) {
	const dim = 16
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(2)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	red, err := w.Node(0).Reducer(dim)
	if err != nil {
		t.Fatalf("reducer: %v", err)
	}
	// Rank 0 reduces alone — with rank 1 never participating the collective
	// wedges on the wire, so the Join's drain cannot complete on its own.
	reduceErr := make(chan error, 1)
	go func() {
		_, err := red.Reduce(context.Background(), make(tensor.Vector, dim))
		reduceErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reduction reach the wire

	joinErr := make(chan error, 1)
	go func() {
		_, err := w.Join("late")
		joinErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the transition enter its drain

	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-joinErr:
		if !errors.Is(err, collective.ErrWorldClosed) {
			t.Fatalf("join racing close returned %v, want ErrWorldClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join did not abort after close")
	}
	select {
	case err := <-reduceErr:
		if err == nil {
			t.Fatal("wedged reduce completed successfully against a closed world")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wedged reduce never unblocked")
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("close-during-drain leaked %d pool leases", n)
	}
}

// TestCloseRacingStateTransfer closes the world from inside the state
// provider, so the shutdown lands in or just before the transfer phase. The
// transition must finish (committed or aborted, both are legal at this race)
// without hanging and without leaking. Run with -tags leasedebug to name any
// leaked lease's minting site.
func TestCloseRacingStateTransfer(t *testing.T) {
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(2)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	params := make([]float64, 20000)
	closeDone := make(chan error, 1)
	var once sync.Once
	w.Node(0).SetStateProvider(func() []float64 {
		once.Do(func() {
			go func() { closeDone <- w.Close() }()
		})
		return params
	})

	_, joinErr := w.Join("late")
	if joinErr != nil && !errors.Is(joinErr, collective.ErrWorldClosed) {
		t.Fatalf("join racing close returned %v, want nil or ErrWorldClosed", joinErr)
	}
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("close deadlocked against the state transfer")
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("close-during-transfer leaked %d pool leases", n)
	}
}

// TestHybridWorldRejectsTransitions pins the explicit unsupported-transport
// contract: a WithHosts world's placement is fixed at construction.
func TestHybridWorldRejectsTransitions(t *testing.T) {
	w, err := collective.NewWorld(3,
		collective.WithTransport(collective.TCP),
		collective.WithBasePort(39520),
		collective.WithHosts(0, 0, 1),
	)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer w.Close()
	if _, err := w.Join("x"); !errors.Is(err, collective.ErrElasticUnsupported) {
		t.Fatalf("hybrid join: %v, want ErrElasticUnsupported", err)
	}
}

// TestTCPWorldGrows runs one join on the TCP transport: the new epoch's
// generation listens on a fresh port block and the joiner's dials ride the
// retry/backoff path.
func TestTCPWorldGrows(t *testing.T) {
	const dim = 24
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(2,
		collective.WithTransport(collective.TCP),
		collective.WithBasePort(39540),
		collective.WithDialRetry(5*time.Second),
	)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	reds := make([]collective.Reducer, 2)
	for r := 0; r < 2; r++ {
		if reds[r], err = w.Node(r).Reducer(dim); err != nil {
			t.Fatalf("reducer: %v", err)
		}
	}
	joiner, err := w.Join("tcp-late")
	if err != nil {
		t.Fatalf("Join over TCP: %v", err)
	}
	jr, err := joiner.Reducer(dim)
	if err != nil {
		t.Fatalf("joiner reducer: %v", err)
	}
	var wg sync.WaitGroup
	for _, red := range append(reds, jr) {
		wg.Add(1)
		go func(red collective.Reducer) {
			defer wg.Done()
			res, err := red.Reduce(context.Background(), make(tensor.Vector, dim))
			if err != nil {
				t.Errorf("post-join tcp reduce: %v", err)
				return
			}
			if res.Ranks != 3 {
				t.Errorf("post-join Ranks = %d, want 3", res.Ranks)
			}
			tensor.PutVector(res.Sum)
		}(red)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("tcp growth leaked %d pool leases", n)
	}
}
