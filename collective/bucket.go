package collective

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
)

// This file implements the bucketed, overlapped gradient exchange: instead of
// one blocking Reduce over the whole flat gradient after the backward pass, a
// training loop opens a step (BeginStep), submits layer-aligned buckets as
// backprop produces them (SubmitBucket — communication starts while the
// remaining layers are still backpropagating), applies each bucket's reduced
// sum as it lands (BucketHandle.Wait), and closes the step (WaitStep). The
// classic one-shot Reduce remains the single-bucket special case.
//
// Concurrency and wire safety: concurrent bucket reductions ride disjoint tag
// blocks (collectives.Config.TagOffset). The Sync reducer serializes buckets
// onto a fixed set of stream workers — bucket i runs on stream i mod
// numBucketStreams, in submit order — so at most numBucketStreams reductions
// are in flight and every rank pairs the same bucket with the same stream.
// The eager reducers run buckets as concurrent sub-collectives of one partial
// round behind a single activation: one solo/majority/quorum participation
// decision per step, shared by every bucket (see internal/partial).

// ErrReducerClosed is returned by the bucketed step API after Close.
var ErrReducerClosed = errors.New("collective: reducer closed")

// numBucketStreams is how many bucket reductions a Sync bucketed step keeps
// in flight concurrently. Each stream serializes its buckets in submit order
// on its own tag block, so the streams never collide on the wire; more
// streams overlap more buckets but spread the transport's write coalescing
// thinner.
const numBucketStreams = 4

// BucketReducer is the asynchronous bucket extension of Reducer, implemented
// by every built-in mode. One step's protocol is
//
//	br.BeginStep(ctx, lens)                   // once per step
//	h, _ := br.SubmitBucket(ctx, off, data)   // per bucket, during backprop
//	sum, _ := h.Wait(ctx)                     // per bucket, as results land
//	res, _ := br.WaitStep(ctx)                // once per step
//
// SPMD contract: every rank must open steps with the same bucket lengths and
// submit the buckets in the same order (the reverse layer order of the
// backward pass satisfies this), interleaved identically with any plain
// Reduce calls. Eager reducers additionally fix the layout at construction
// (WithBucketLayout) because their engine's per-round schedules are built per
// bucket.
type BucketReducer interface {
	Reducer
	// BeginStep opens a bucketed step whose buckets have the given lengths,
	// in ascending offset order, summing to the reducer dimension. For the
	// negotiated Sync style this also runs the step's readiness consensus.
	BeginStep(ctx context.Context, lens []int) error
	// SubmitBucket contributes the bucket starting at offset to the step and
	// returns a handle that resolves when the bucket's reduced sum is
	// available. data is borrowed: it is snapshotted and may be reused
	// immediately. (offset, len(data)) must name one of the step's buckets.
	SubmitBucket(ctx context.Context, offset int, data tensor.Vector) (*BucketHandle, error)
	// WaitStep completes the step: it waits for every submitted bucket,
	// releases any unclaimed bucket results, and returns the step's
	// accounting (Result.Sum is nil — the sums were delivered per bucket).
	// Canceling ctx abandons the wait; for Sync reducers the collective is
	// then mid-protocol and the only safe follow-up is closing the world.
	WaitStep(ctx context.Context) (Result, error)
}

// BucketHandle is one in-flight bucket reduction of a bucketed step.
type BucketHandle struct {
	offset int
	length int

	// lazy, when non-nil, fetches the result on demand (the eager engine
	// publishes bucket results itself; the handle only needs to know where to
	// look). Worker-resolved handles use done/sum/err instead.
	lazy func(ctx context.Context) (tensor.Vector, error)

	done      chan struct{}
	mu        sync.Mutex
	sum       tensor.Vector
	err       error
	claimed   bool
	abandoned bool
}

// Offset returns the bucket's start offset within the gradient vector.
func (h *BucketHandle) Offset() int { return h.offset }

// Len returns the bucket's element count.
func (h *BucketHandle) Len() int { return h.length }

// Wait blocks until the bucket's reduction completes and returns the
// pool-leased reduced sum for the bucket's element range; the caller owns it
// (release with tensor.PutVector once applied). Wait claims the result and
// may be called at most once per handle; results never claimed are released
// by WaitStep.
func (h *BucketHandle) Wait(ctx context.Context) (tensor.Vector, error) {
	if h.lazy != nil {
		return h.lazy(ctx)
	}
	select {
	case <-h.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return nil, h.err
	}
	if h.claimed || h.sum == nil {
		return nil, errors.New("collective: bucket result already claimed")
	}
	h.claimed = true
	sum := h.sum
	h.sum = nil
	return sum, nil
}

// resolve delivers the worker's result. If the handle was abandoned (its step
// gave up waiting), the lease is released immediately so nothing leaks.
func (h *BucketHandle) resolve(sum tensor.Vector, err error) {
	h.mu.Lock()
	if h.abandoned && sum != nil {
		tensor.PutVector(sum)
		sum = nil
	}
	h.sum, h.err = sum, err
	h.mu.Unlock()
	close(h.done)
}

// abandon marks the handle as no longer awaited and releases an unclaimed
// result if one already arrived; a result arriving later is released by
// resolve.
func (h *BucketHandle) abandon() {
	h.mu.Lock()
	if h.sum != nil && !h.claimed {
		tensor.PutVector(h.sum)
		h.sum = nil
	}
	h.abandoned = true
	h.mu.Unlock()
}

// finalize waits for the handle's resolution, releases an unclaimed result,
// and returns the handle's error. On ctx cancellation the handle is
// abandoned (a late result is released by resolve) and ctx's error returned.
func (h *BucketHandle) finalize(ctx context.Context) error {
	if h.lazy != nil {
		return nil // the eager engine owns the buffers; nothing to release
	}
	select {
	case <-h.done:
	case <-ctx.Done():
		h.abandon()
		return ctx.Err()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sum != nil && !h.claimed {
		tensor.PutVector(h.sum)
		h.sum = nil
	}
	return h.err
}

// overlapper is implemented by the built-in reducers.
type overlapper interface {
	overlapSettings() (enabled bool, bucketElems int)
}

// OverlapSettings reports whether the reducer was built with WithOverlap and
// the WithBucketElems coalescing target it carries. It returns false for
// reducer implementations from outside this package.
func OverlapSettings(r Reducer) (enabled bool, bucketElems int) {
	if o, ok := r.(overlapper); ok {
		return o.overlapSettings()
	}
	return false, 0
}

// validateLayout checks that lens partitions [0, dim) and returns the bucket
// start offsets.
func validateLayout(dim int, lens []int) ([]int, error) {
	if len(lens) == 0 {
		return nil, errors.New("collective: bucketed step needs at least one bucket")
	}
	offs := make([]int, len(lens))
	total := 0
	for b, l := range lens {
		if l <= 0 {
			return nil, fmt.Errorf("collective: bucket %d length %d must be positive", b, l)
		}
		offs[b] = total
		total += l
	}
	if total != dim {
		return nil, fmt.Errorf("collective: bucket lengths sum to %d, want reducer dimension %d", total, dim)
	}
	return offs, nil
}

// bucketIndex locates the bucket with the given (offset, length) in the
// layout described by lens/offs.
func bucketIndex(lens, offs []int, offset, length int) (int, error) {
	for b, o := range offs {
		if o == offset {
			if lens[b] != length {
				return 0, fmt.Errorf("collective: bucket at offset %d has %d elements, submission has %d", offset, lens[b], length)
			}
			return b, nil
		}
	}
	return 0, fmt.Errorf("collective: no bucket starts at offset %d", offset)
}

// --- Sync reducer implementation ---------------------------------------

// bucketTask is one submitted bucket on its way through a stream worker.
type bucketTask struct {
	h      *BucketHandle
	sum    tensor.Vector
	cancel <-chan struct{}
}

// bucketStreams is the Sync reducer's worker pool: numBucketStreams
// goroutines, each draining its own FIFO queue and running each bucket's
// allreduce in the stream's private tag block. The queues are mutex+cond
// lists rather than channels so that Close (which may race with a submitter
// still in its backward pass) never has to close a channel someone might be
// sending on: after close, workers drain whatever is queued — resolving it
// with ErrReducerClosed and releasing the leases — and exit.
type bucketStreams struct {
	mu     sync.Mutex
	cond   *sync.Cond
	qs     [][]bucketTask
	closed bool
	wg     sync.WaitGroup
}

// enqueue appends the task to stream i, or resolves it with ErrReducerClosed
// when the streams are already shut down.
func (st *bucketStreams) enqueue(i int, task bucketTask) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		tensor.PutVector(task.sum)
		task.h.resolve(nil, ErrReducerClosed)
		return
	}
	st.qs[i] = append(st.qs[i], task)
	st.cond.Broadcast()
	st.mu.Unlock()
}

// close wakes every worker for its final drain. Idempotent.
func (st *bucketStreams) close() {
	st.mu.Lock()
	st.closed = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// joinEngine blocks until the stream workers have drained and exited,
// returning their queued leases to the pool. Only valid after the
// communicator is closed (a worker blocked inside a collective exits then);
// World.Close calls it so shutdown leaks no pool leases.
func (s *syncReducer) joinEngine() {
	s.mu.Lock()
	st := s.streams
	s.mu.Unlock()
	if st != nil {
		st.wg.Wait()
	}
}

func (s *syncReducer) ensureStreams() *bucketStreams {
	if s.streams != nil {
		return s.streams
	}
	st := &bucketStreams{qs: make([][]bucketTask, numBucketStreams)}
	st.cond = sync.NewCond(&st.mu)
	for i := 0; i < numBucketStreams; i++ {
		st.wg.Add(1)
		go func(i int) {
			defer st.wg.Done()
			cfg := collectives.Config{SegmentElems: s.segElems, TagOffset: s.tagShift + collectives.BucketStreamTagOffset(i), PeerDeadline: s.peerDeadline}
			for {
				st.mu.Lock()
				for len(st.qs[i]) == 0 && !st.closed {
					st.cond.Wait()
				}
				if len(st.qs[i]) == 0 { // closed and drained
					st.mu.Unlock()
					return
				}
				task := st.qs[i][0]
				st.qs[i] = st.qs[i][1:]
				closed := st.closed
				st.mu.Unlock()
				switch {
				case closed:
					// The reducer was closed with this bucket still queued:
					// resolve it without touching the wire.
					tensor.PutVector(task.sum)
					task.h.resolve(nil, ErrReducerClosed)
				default:
					if err := collectives.AllreduceWith(s.comm, task.sum, collectives.OpSum, s.algo, cfg, task.cancel); err != nil {
						tensor.PutVector(task.sum)
						task.h.resolve(nil, ctxErrorChan(task.cancel, err))
						continue
					}
					task.h.resolve(task.sum, nil)
				}
			}
		}(i)
	}
	s.streams = st
	return st
}

// ctxErrorChan converts the comm cancellation sentinel into context.Canceled
// when the cancel channel has fired (the channel came from a context).
func ctxErrorChan(cancel <-chan struct{}, err error) error {
	if cancel == nil {
		return err
	}
	select {
	case <-cancel:
		if errors.Is(err, comm.ErrCanceled) {
			return context.Canceled
		}
	default:
	}
	return err
}

// syncStep is the Sync reducer's in-flight bucketed step.
type syncStep struct {
	lens    []int
	offs    []int
	handles []*BucketHandle
	call    int
}

func (s *syncReducer) overlapSettings() (bool, int) { return s.overlap, s.bucketElems }

// BeginStep opens a bucketed step (see BucketReducer). For the negotiated
// style the step's single readiness consensus runs here — one negotiation per
// step, not per bucket.
func (s *syncReducer) BeginStep(ctx context.Context, lens []int) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrReducerClosed
	}
	if s.step != nil {
		s.mu.Unlock()
		return errors.New("collective: BeginStep with a step already in flight")
	}
	s.mu.Unlock()
	offs, err := validateLayout(s.dim, lens)
	if err != nil {
		return err
	}
	call := s.calls
	s.calls++
	if s.negotiate {
		ready := tensor.GetVector(1)
		ready[0] = 1
		err := collectives.AllreduceWith(s.comm, ready, collectives.OpSum, collectives.AlgoRecursiveDoubling, collectives.Config{TagOffset: s.tagShift, PeerDeadline: s.peerDeadline}, ctx.Done())
		tensor.PutVector(ready)
		if err != nil {
			return ctxError(ctx, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrReducerClosed
	}
	s.step = &syncStep{lens: lens, offs: offs, handles: make([]*BucketHandle, len(lens)), call: call}
	return nil
}

// SubmitBucket snapshots the bucket and hands it to its stream worker; the
// allreduce begins immediately, overlapping whatever the caller does next.
func (s *syncReducer) SubmitBucket(ctx context.Context, offset int, data tensor.Vector) (*BucketHandle, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrReducerClosed
	}
	st := s.step
	if st == nil {
		s.mu.Unlock()
		return nil, errors.New("collective: SubmitBucket without BeginStep")
	}
	b, err := bucketIndex(st.lens, st.offs, offset, len(data))
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if st.handles[b] != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("collective: bucket at offset %d submitted twice", offset)
	}
	h := &BucketHandle{offset: offset, length: len(data), done: make(chan struct{})}
	st.handles[b] = h
	streams := s.ensureStreams()
	s.mu.Unlock()
	streams.enqueue(b%numBucketStreams, bucketTask{h: h, sum: tensor.GetVectorCopy(data), cancel: ctx.Done()})
	return h, nil
}

// WaitStep completes the step (see BucketReducer). Canceling ctx abandons
// the remaining buckets — their late results are released, stray queued
// payloads for the bucket tag blocks are purged — and leaves the collective
// mid-protocol: close the world afterwards.
func (s *syncReducer) WaitStep(ctx context.Context) (Result, error) {
	s.mu.Lock()
	st := s.step
	s.step = nil
	s.mu.Unlock()
	if st == nil {
		return Result{}, errors.New("collective: WaitStep without BeginStep")
	}
	var firstErr error
	submitted := 0
	for i, h := range st.handles {
		if h == nil {
			continue
		}
		submitted++
		if err := h.finalize(ctx); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if ctx.Err() != nil {
				// Abandon the rest and purge stray bucket-stream payloads so
				// their pooled vectors return to the pool instead of sitting
				// in the unexpected queue forever.
				for _, rest := range st.handles[i+1:] {
					if rest != nil {
						rest.abandon()
					}
				}
				lo, hi := collectives.BucketStreamTagRange()
				s.comm.DiscardTagRange(lo+s.tagShift, hi+s.tagShift)
				return Result{}, ctxError(ctx, firstErr)
			}
		}
	}
	if firstErr != nil {
		return Result{}, ctxError(ctx, firstErr)
	}
	if submitted != len(st.handles) {
		// An SPMD peer that submitted everything is now blocked inside the
		// missing buckets' collectives; surface the protocol violation here
		// instead of reporting full participation.
		return Result{}, fmt.Errorf("collective: step ended with %d of %d buckets submitted", submitted, len(st.handles))
	}
	size := s.comm.Size()
	return Result{Ranks: size, ActiveRanks: size, Included: true, Round: st.call}, nil
}

// Close marks the reducer closed and stops its stream workers; queued buckets
// resolve with ErrReducerClosed and their leases return to the pool. Close
// does not close the transport, so a worker blocked inside a collective is
// unblocked by closing the world, not by Close. It is idempotent and safe to
// call concurrently with an in-flight bucketed step (World.Close during an
// overlapped step, or a trainer and World.Close both shutting down).
func (s *syncReducer) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		streams, st := s.streams, s.step
		s.step = nil
		s.mu.Unlock()
		if streams != nil {
			streams.close()
		}
		if st != nil {
			for _, h := range st.handles {
				if h != nil {
					h.abandon()
				}
			}
		}
	})
	return nil
}

// --- Eager reducer implementation ---------------------------------------

// eagerStep is the eager reducer's in-flight bucketed step.
type eagerStep struct {
	call      int
	round     int    // engine round (engine steps only)
	seq       uint64 // contribution sequence, set at commit
	syncStep  bool   // this step is the periodic full synchronization
	submitted int
	handles   []*BucketHandle

	// Periodic-synchronization state (syncStep only): the combined
	// fresh+drained contribution being reduced per bucket by the stream
	// goroutines, a pristine copy for the failure restore, and the reaper's
	// completion group.
	syncSum tensor.Vector
	contrib tensor.Vector
	syncErr error
	syncMu  sync.Mutex
	syncWG  sync.WaitGroup
}

func (e *eagerReducer) overlapSettings() (bool, int) { return e.overlap, e.bucketElems }

// BeginStep opens a bucketed step (see BucketReducer). The lens must match
// the layout the reducer was constructed with (WithBucketLayout, or the
// single whole-vector bucket): the partial engine's per-round schedules are
// built per bucket, so the layout is fixed for the reducer's lifetime.
func (e *eagerReducer) BeginStep(ctx context.Context, lens []int) error {
	if e.estep != nil {
		return errors.New("collective: BeginStep with a step already in flight")
	}
	if _, err := validateLayout(e.dim, lens); err != nil {
		return err
	}
	if len(lens) != e.ar.NumBuckets() {
		return fmt.Errorf("collective: step has %d buckets, reducer layout has %d (fix it with WithBucketLayout)", len(lens), e.ar.NumBuckets())
	}
	for b, l := range lens {
		if lo, hi := e.ar.BucketRange(b); hi-lo != l {
			return fmt.Errorf("collective: bucket %d has %d elements, reducer layout has %d", b, l, hi-lo)
		}
	}
	call := e.calls
	e.calls++
	st := &eagerStep{call: call, handles: make([]*BucketHandle, len(lens))}
	if e.syncEvery > 0 && (call+1)%e.syncEvery == 0 {
		st.syncStep = true
	} else {
		round, err := e.ar.BeginStep()
		if err != nil {
			return e.stepErr(err)
		}
		st.round = round
	}
	if e.stepBuf == nil {
		e.stepBuf = tensor.NewVector(e.dim)
	}
	e.estep = st
	return nil
}

func (e *eagerReducer) stepErr(err error) error {
	if errors.Is(err, partial.ErrClosed) {
		return ErrReducerClosed
	}
	return err
}

// SubmitBucket stages the bucket; when the step's final bucket arrives the
// whole contribution is committed to the engine in one atomic fold, so every
// bucket of the step shares one participation decision. Bucket handles
// resolve as the engine's per-bucket chains complete.
func (e *eagerReducer) SubmitBucket(ctx context.Context, offset int, data tensor.Vector) (*BucketHandle, error) {
	st := e.estep
	if st == nil {
		return nil, errors.New("collective: SubmitBucket without BeginStep")
	}
	b, err := bucketIndex(e.lens, e.offs, offset, len(data))
	if err != nil {
		return nil, err
	}
	if st.handles[b] != nil {
		return nil, fmt.Errorf("collective: bucket at offset %d submitted twice", offset)
	}
	e.stepBuf[offset : offset+len(data)].CopyFrom(data)
	var h *BucketHandle
	if st.syncStep {
		h = &BucketHandle{offset: offset, length: len(data), done: make(chan struct{})}
	} else {
		round, bucket := st.round, b
		h = &BucketHandle{offset: offset, length: len(data), lazy: func(ctx context.Context) (tensor.Vector, error) {
			sum, err := e.ar.WaitBucket(ctx, round, bucket)
			return sum, e.stepErr(err)
		}}
	}
	st.handles[b] = h
	st.submitted++
	if st.submitted == len(st.handles) {
		if st.syncStep {
			e.launchSyncStep(ctx, st, e.lens, e.offs)
		} else {
			seq, err := e.ar.Contribute(st.round, e.stepBuf)
			st.seq = seq
			if err != nil {
				return h, e.stepErr(err)
			}
		}
	}
	return h, nil
}

// launchSyncStep runs the periodic full synchronization as per-bucket
// synchronous allreduces: the stale-gradient buffer is drained and folded
// into the step's contribution per bucket, and the buckets reduce
// concurrently on stream goroutines (stream i handles buckets i, i+N, ... in
// ascending order, each in its own tag block) so handles still resolve
// incrementally. Every rank reaches this point on the same call index
// (WithSyncEvery is SPMD), so the full-participation semantics of the
// one-shot path carry over bucket by bucket.
func (e *eagerReducer) launchSyncStep(ctx context.Context, st *eagerStep, lens, offs []int) {
	drained := e.ar.DrainPending()
	sum := tensor.GetVectorCopy(e.stepBuf)
	sum.Add(drained)
	tensor.PutVector(drained)
	st.syncSum = sum
	st.contrib = tensor.GetVectorCopy(sum)
	cancel := ctx.Done()
	streams := numBucketStreams
	if streams > len(lens) {
		streams = len(lens)
	}
	for i := 0; i < streams; i++ {
		st.syncWG.Add(1)
		go func(i int) {
			defer st.syncWG.Done()
			cfg := collectives.Config{SegmentElems: e.segElems, TagOffset: e.tagShift + collectives.BucketStreamTagOffset(i), PeerDeadline: e.peerDeadline}
			for b := i; b < len(lens); b += streams {
				h := st.handles[b]
				seg := sum[offs[b] : offs[b]+lens[b]]
				if err := collectives.AllreduceWith(e.comm, seg, collectives.OpSum, e.algo, cfg, cancel); err != nil {
					err = ctxErrorChan(cancel, err)
					st.syncMu.Lock()
					if st.syncErr == nil {
						st.syncErr = err
					}
					st.syncMu.Unlock()
					h.resolve(nil, err)
					continue
				}
				h.resolve(tensor.GetVectorCopy(seg), nil)
			}
		}(i)
	}
	// Reaper: once every stream goroutine is done, restore the contribution
	// on failure (no gradient lost — it returns to the send buffer as stale
	// data) and recycle the step's scratch leases. Running detached keeps
	// WaitStep cancelable without freeing buffers under the workers; the
	// reducer's joinEngine waits for it at world shutdown.
	e.reapers.Add(1)
	go func() {
		defer e.reapers.Done()
		st.syncWG.Wait()
		st.syncMu.Lock()
		failed := st.syncErr != nil
		st.syncMu.Unlock()
		if failed {
			e.ar.RestorePending(st.contrib)
		}
		tensor.PutVector(st.contrib)
		tensor.PutVector(st.syncSum)
	}()
}

// layoutOf computes the reducer's bucket lengths and offsets from the
// engine's fixed layout; the constructor caches the result on e.lens/e.offs.
func (e *eagerReducer) layoutOf() (lens, offs []int) {
	n := e.ar.NumBuckets()
	lens = make([]int, n)
	offs = make([]int, n)
	for b := 0; b < n; b++ {
		lo, hi := e.ar.BucketRange(b)
		offs[b], lens[b] = lo, hi-lo
	}
	return lens, offs
}

// WaitStep completes the step (see BucketReducer): it waits for the engine
// round (or the periodic synchronization) to finish and returns the step's
// accounting — one participation decision, so ActiveRanks and Included are
// identical for every bucket of the step.
func (e *eagerReducer) WaitStep(ctx context.Context) (Result, error) {
	st := e.estep
	if st == nil {
		return Result{}, errors.New("collective: WaitStep without BeginStep")
	}
	e.estep = nil
	if st.submitted != len(st.handles) {
		return Result{}, fmt.Errorf("collective: step ended with %d of %d buckets submitted", st.submitted, len(st.handles))
	}
	if st.syncStep {
		var firstErr error
		for _, h := range st.handles {
			if err := h.finalize(ctx); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return Result{}, ctxError(ctx, firstErr)
		}
		size := e.comm.Size()
		return Result{Ranks: size, ActiveRanks: size, Included: true, Round: st.call}, nil
	}
	info, err := e.ar.WaitStep(ctx, st.round, st.seq)
	if err != nil {
		return Result{}, e.stepErr(err)
	}
	return Result{
		Ranks:       e.comm.Size(),
		ActiveRanks: info.ActiveProcesses,
		Included:    info.Included,
		Round:       info.Round,
	}, nil
}
