package collective

import (
	"context"
	"sync"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/membership"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
)

// ParamSyncer is implemented by the epoch-aware reducers Node.Reducer mints:
// SyncParams averages the model replicas across the current epoch's members.
// Trainers that synchronize replicas periodically (eager-SGD's bounded
// divergence, the final model average) must do it through this method on
// elastic worlds — it runs inside the same drain barrier as the gradient
// exchange, so an epoch transition can never split or orphan the synchronous
// collective it issues, and its tags follow the epoch's namespace.
type ParamSyncer interface {
	// SyncParams sums params across all members in place, scales by the member
	// count, and returns that count. A zero deadline blocks indefinitely on a
	// silent peer; pass the world's WithPeerDeadline value to fail typed.
	SyncParams(params tensor.Vector, deadline time.Duration) (int, error)
}

// elasticReducer is the Reducer every Node.Reducer call returns: a thin
// epoch-aware wrapper around the real (sync or eager) reducer of the current
// epoch. It is the world's drain barrier — an epoch transition flips the
// wrapper into draining, new steps park at the gate while in-flight ones run
// to completion, and once every wrapper in the world is idle the old epoch's
// inner reducers are retired and fresh ones minted over the new epoch's
// communicators. Training loops never observe the swap: the same Reducer
// value keeps working across epochs, with Result.Ranks and the participant
// set following the membership.
type elasticReducer struct {
	node *Node
	dim  int
	cfg  config // merged option set at mint time; epoch is stamped per remint

	mu          sync.Mutex
	cond        *sync.Cond
	inner       Reducer
	epoch       uint64
	active      int           // in-flight operations on inner (Reduce calls and whole bucketed steps)
	rounds      uint64        // operations completed since mint — the drain allowance is measured in these
	guarded     int           // open TrainStepper brackets; nested operations bypass the gate
	stepInner   BucketReducer // inner bound by an open bucketed step, nil between steps
	draining    bool
	drainTarget uint64 // while draining: admit ops until rounds reaches this
	closed      bool
}

// TrainStepper is implemented by the epoch-aware reducers Node.Reducer mints:
// it brackets one whole training step — gradient compute, exchange, optimizer
// update, periodic synchronization — as a single operation at the world's
// drain barrier. With the bracket in place an epoch transition only ever
// observes step boundaries, so state providers snapshot parameters and step
// counters that are never mid-update, and every survivor hands off at the
// same step in synchronous modes. The reducer operations issued between
// BeginTrainStep and EndTrainStep (same goroutine) bypass the gate — they are
// part of the bracketed operation, not new ones.
type TrainStepper interface {
	// BeginTrainStep passes the drain gate and opens the bracket; it returns
	// ErrReducerClosed once the reducer (or its world) has closed.
	BeginTrainStep() error
	// EndTrainStep closes the bracket opened by the matching BeginTrainStep.
	EndTrainStep()
}

// BeginTrainStep implements TrainStepper.
func (r *elasticReducer) BeginTrainStep() error {
	if _, err := r.beginOp(); err != nil {
		return err
	}
	r.mu.Lock()
	r.guarded++
	r.mu.Unlock()
	return nil
}

// EndTrainStep implements TrainStepper.
func (r *elasticReducer) EndTrainStep() {
	r.mu.Lock()
	r.guarded--
	r.mu.Unlock()
	r.endOp()
}

func newElasticReducer(n *Node, dim int, cfg config, epoch uint64, c *comm.Communicator) (*elasticReducer, error) {
	inner, err := NewReducer(c, dim, func(cc *config) { *cc = cfg; cc.epoch = epoch })
	if err != nil {
		return nil, err
	}
	r := &elasticReducer{node: n, dim: dim, cfg: cfg, inner: inner, epoch: epoch}
	r.cond = sync.NewCond(&r.mu)
	return r, nil
}

// beginOp gates one operation through the drain barrier: while a transition
// is draining, new operations are admitted only up to the drain allowance
// (see beginDrain), then park. Admitted operations pin the current inner
// reducer until endOp.
func (r *elasticReducer) beginOp() (Reducer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.draining && r.rounds >= r.drainTarget && r.guarded == 0 && !r.closed {
		r.cond.Wait()
	}
	if r.closed {
		return nil, ErrReducerClosed
	}
	r.active++
	return r.inner, nil
}

func (r *elasticReducer) endOp() {
	r.mu.Lock()
	r.active--
	r.rounds++
	r.cond.Broadcast() // wake a drain waiting for idle, or an op parked under the allowance
	r.mu.Unlock()
}

// beginDrain flips the barrier: no further operations are admitted (the
// allowance starts at the rounds already completed) but in-flight ones keep
// running. It returns the number of operations started so far — completed
// plus in-flight — which the transition folds into the matched group's
// allowance (allowRounds): synchronous collectives are lockstep, so a member
// mid-collective needs its peers' matching round, and a hard gate here would
// deadlock the drain against the very steps it waits for.
func (r *elasticReducer) beginDrain() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.draining = true
	r.drainTarget = r.rounds
	return r.rounds + uint64(r.active)
}

// allowRounds raises the drain allowance so members behind the group's
// furthest round catch up instead of starving a lockstep peer.
func (r *elasticReducer) allowRounds(target uint64) {
	r.mu.Lock()
	if target > r.drainTarget {
		r.drainTarget = target
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// awaitIdle blocks until the reducer has no in-flight operation. Operations
// wedged on a dead peer complete with an error once the failure detector
// (WithPeerDeadline) fires or the epoch's transport closes; elastic worlds
// should configure a peer deadline so a drain never outwaits a silent rank.
// The gate may still admit catch-up rounds afterwards — quiesceReducers is
// the atomic completion check.
func (r *elasticReducer) awaitIdle() {
	r.mu.Lock()
	for r.active > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// quiesceReducers completes a drain: if every reducer is idle at one instant,
// it revokes their remaining catch-up allowances under the same critical
// section — no operation can slip in afterwards — and reports true. If any
// reducer is still active it changes nothing and reports false; the caller
// re-waits. Allowances are revoked rather than run dry because a member whose
// operations errored (dead peer) stops pumping below the group target, and
// the outgoing epoch's wire state is discarded wholesale anyway.
func quiesceReducers(rs []*elasticReducer) bool {
	for i, r := range rs {
		r.mu.Lock()
		if r.active > 0 {
			for j := 0; j <= i; j++ {
				rs[j].mu.Unlock()
			}
			return false
		}
	}
	for _, r := range rs {
		r.drainTarget = r.rounds
		r.mu.Unlock()
	}
	return true
}

// undrain lifts the barrier and wakes parked operations, either onto the
// freshly minted epoch (after remint) or back onto the old one (transition
// aborted).
func (r *elasticReducer) undrain() {
	r.mu.Lock()
	r.draining = false
	r.cond.Broadcast()
	r.mu.Unlock()
}

// remint builds the new epoch's inner reducer over the given communicator and
// returns the retired one for the transition to close and join with the old
// generation. Only called with the barrier down and the reducer idle.
func (r *elasticReducer) remint(c *comm.Communicator, epoch uint64) (Reducer, error) {
	inner, err := NewReducer(c, r.dim, func(cc *config) { *cc = r.cfg; cc.epoch = epoch })
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	old := r.inner
	r.inner = inner
	r.epoch = epoch
	// Round counters restart with the epoch. Drain allowances compare these
	// counters ACROSS members (the group target is a max over the matched
	// reducers), which is only meaningful while everyone counts from the
	// same origin: a joiner's fresh reducer starts at zero, so a survivor
	// carrying its lifetime count would hand the next transition a target
	// the joiner's gate check reads as "run freely" — it would keep starting
	// steps its gated peers can never serve, wedging the drain.
	r.rounds = 0
	r.drainTarget = 0
	r.mu.Unlock()
	return old, nil
}

// markClosed closes the barrier permanently and closes the current inner
// reducer, waking every parked operation with ErrReducerClosed. Idempotent.
func (r *elasticReducer) markClosed() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	inner := r.inner
	r.cond.Broadcast()
	r.mu.Unlock()
	return inner.Close()
}

// Reduce runs one reduction on the current epoch's reducer, waiting out any
// in-flight membership transition first.
func (r *elasticReducer) Reduce(ctx context.Context, grad tensor.Vector) (Result, error) {
	inner, err := r.beginOp()
	if err != nil {
		return Result{}, err
	}
	defer r.endOp()
	return inner.Reduce(ctx, grad)
}

// Close closes the reducer. The world's transition machinery stops touching
// it once closed; inner engines are joined by World.Close.
func (r *elasticReducer) Close() error { return r.markClosed() }

// Name identifies the reducer in reports.
func (r *elasticReducer) Name() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.inner.(interface{ Name() string }); ok {
		return n.Name()
	}
	return "elastic"
}

// Allreducer exposes the current epoch's partial allreducer for diagnostics
// (NAP counters, designated initiators), or nil for Sync modes. The handle is
// per-epoch: re-fetch it after a membership change.
func (r *elasticReducer) Allreducer() *partial.Allreducer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.inner.(interface{ Allreducer() *partial.Allreducer }); ok {
		return e.Allreducer()
	}
	return nil
}

// overlapSettings forwards the mint-time overlap configuration (OverlapSettings).
func (r *elasticReducer) overlapSettings() (bool, int) { return r.cfg.overlap, r.cfg.bucketElems }

// BeginStep opens a bucketed step. The whole step counts as one operation at
// the drain barrier — a transition arriving mid-step waits for WaitStep, so an
// epoch boundary never splits a step's buckets across two schedules.
func (r *elasticReducer) BeginStep(ctx context.Context, lens []int) error {
	inner, err := r.beginOp()
	if err != nil {
		return err
	}
	br, ok := inner.(BucketReducer)
	if !ok {
		r.endOp()
		return ErrReducerClosed
	}
	if err := br.BeginStep(ctx, lens); err != nil {
		r.endOp()
		return err
	}
	r.mu.Lock()
	r.stepInner = br
	r.mu.Unlock()
	return nil
}

// SubmitBucket forwards to the step's reducer.
func (r *elasticReducer) SubmitBucket(ctx context.Context, offset int, data tensor.Vector) (*BucketHandle, error) {
	r.mu.Lock()
	br := r.stepInner
	r.mu.Unlock()
	if br == nil {
		return nil, ErrReducerClosed // data is borrowed, so nothing to release
	}
	return br.SubmitBucket(ctx, offset, data)
}

// WaitStep completes the step and releases the reducer's slot at the drain
// barrier.
func (r *elasticReducer) WaitStep(ctx context.Context) (Result, error) {
	r.mu.Lock()
	br := r.stepInner
	r.stepInner = nil
	r.mu.Unlock()
	if br == nil {
		return Result{}, ErrReducerClosed
	}
	defer r.endOp()
	return br.WaitStep(ctx)
}

// SyncParams implements ParamSyncer: one synchronous allreduce over the
// current epoch's members, gated by the drain barrier exactly like a
// reduction — every member issues the same SPMD sequence of reductions and
// syncs, so the barrier's catch-up allowance keeps the collectives matched
// across an epoch boundary.
func (r *elasticReducer) SyncParams(params tensor.Vector, deadline time.Duration) (int, error) {
	if _, err := r.beginOp(); err != nil {
		return 0, err
	}
	defer r.endOp()
	r.mu.Lock()
	epoch := r.epoch
	r.mu.Unlock()
	// The node's communicator and this reducer's epoch move together: both are
	// swapped while the barrier holds every operation out.
	c := r.node.Communicator()
	if err := collectives.AllreduceWith(c, params, collectives.OpSum, collectives.AlgoAuto,
		collectives.Config{PeerDeadline: deadline, TagOffset: membership.CollectiveTagShift(epoch)}, nil); err != nil {
		return 0, err
	}
	size := c.Size()
	params.Scale(1 / float64(size))
	return size, nil
}

// joinEngine joins the current inner engine's goroutines; retired epochs'
// engines are joined when their generation is retired.
func (r *elasticReducer) joinEngine() {
	r.mu.Lock()
	inner := r.inner
	r.mu.Unlock()
	if j, ok := inner.(engineJoiner); ok {
		j.joinEngine()
	}
}
