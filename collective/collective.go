// Package collective is the public interface to the eager-SGD collective
// engines: synchronous allreduce (the paper's baseline, §3) and the partial
// collectives — solo, majority, and quorum allreduce (§4, §8) — behind one
// substitutable Reducer seam.
//
// The two entry points are:
//
//   - World: builds a fixed-size job over the in-process, TCP, or shared-ring
//     transport and hands out one Node per rank. Options select the transport,
//     the reduction mode, the allreduce algorithm, and the periodic full
//     synchronization.
//   - Reducer: the per-rank object a training loop calls once per step. Every
//     mode — Sync, Solo, Majority, Quorum(k) — implements the same interface,
//     so swapping eager-SGD for synch-SGD is one option, not a rewrite.
//
// A minimal job:
//
//	w, _ := collective.NewWorld(4, collective.WithMode(collective.Solo))
//	defer w.Close()
//	// per rank r (usually one goroutine or process each):
//	red, _ := w.Node(r).Reducer(dim)
//	res, _ := red.Reduce(ctx, grad)     // res.Sum holds the gradient sum
//
// Reduce takes a context: a blocked collective (for example, waiting on a
// rank that died) aborts promptly when the context is canceled instead of
// hanging forever.
package collective

import (
	"context"
	"fmt"

	"eagersgd/internal/collectives"
	"eagersgd/internal/tensor"
)

// ErrRankUnreachable is wrapped by reduction errors caused by a rank that is
// dead or unreachable (crashed process, partitioned link, dead connection).
// Sync reducers surface it instead of blocking forever once a peer is marked
// down — by the transport, by an external detector (Node.MarkPeerDown), or by
// the WithPeerDeadline failure detector. Match with errors.Is; the underlying
// comm.PeerDownError (rank and root cause) remains in the chain.
var ErrRankUnreachable = collectives.ErrRankUnreachable

// Result describes one completed reduction.
type Result struct {
	// Sum is the element-wise sum over the included contributions. The caller
	// owns it; divide by Ranks for the average used by SGD. Sum is leased from
	// the shared vector pool: a training loop that is done with it may release
	// it with tensor.PutVector to keep the steady state allocation-free
	// (forgetting to release merely hands the buffer to the garbage
	// collector).
	Sum tensor.Vector
	// Ranks is the world size.
	Ranks int
	// ActiveRanks is the number of ranks whose fresh contribution is part of
	// Sum — the "number of active processes" metric of Fig. 9. It equals
	// Ranks for Sync reductions and for the periodic full synchronization.
	ActiveRanks int
	// Included reports whether this rank's contribution to this call is part
	// of Sum. When false, the gradient stays buffered and is folded into a
	// later round as a stale contribution (Fig. 7); nothing is lost.
	Included bool
	// Round is the engine round whose result was observed (eager modes), or
	// the zero-based call index (Sync and full-synchronization reductions).
	Round int
}

// Reducer reduces per-rank gradient vectors across the world. One Reducer
// serves one rank; every rank of the world must create a Reducer with the
// same dimension and mode, and a Reducer is driven by one goroutine at a time
// (the rank's training loop).
type Reducer interface {
	// Reduce contributes grad to the current round and returns the reduced
	// result. In Sync mode the call blocks until every rank contributes; in
	// the eager modes it returns as soon as the round completes, which never
	// requires waiting for stragglers (Solo) or waits only for the round's
	// designated initiator (Majority/Quorum). Canceling ctx aborts a blocked
	// call with the context's error.
	Reduce(ctx context.Context, grad tensor.Vector) (Result, error)
	// Close releases the reducer's local resources. It does not close the
	// transport; that is the World's job (or the communicator owner's).
	Close() error
}

// namer is implemented by all built-in reducers.
type namer interface{ Name() string }

// ReducerName returns a human-readable name for the reducer ("eager-sgd
// (solo)", "synch-sgd (horovod)", ...), or "reducer" for implementations
// without one.
func ReducerName(r Reducer) string {
	if n, ok := r.(namer); ok {
		return n.Name()
	}
	return "reducer"
}

// modeKind enumerates the reduction behaviours.
type modeKind int

const (
	kindSync modeKind = iota
	kindSolo
	kindMajority
	kindQuorum
)

// Mode selects the reduction behaviour of a Reducer. Use the Sync, Solo, and
// Majority values or the Quorum constructor; the zero value is Sync.
type Mode struct {
	kind       modeKind
	candidates int
}

// The built-in modes.
var (
	// Sync is the synchronous allreduce baseline: every rank blocks until all
	// ranks contribute, and every contribution is fresh.
	Sync = Mode{kind: kindSync}
	// Solo is the wait-free partial allreduce (§4.1): any rank's arrival
	// completes the round; stragglers contribute stale gradients later.
	Solo = Mode{kind: kindSolo}
	// Majority designates one random initiator per round (§4.2), giving at
	// least P/2 expected fresh contributions per round.
	Majority = Mode{kind: kindMajority}
)

// Quorum generalizes Solo and Majority (§8): k candidate initiators are
// designated per round and the first to arrive completes it. Quorum(1)
// behaves like Majority; Quorum(P) like Solo.
func Quorum(k int) Mode {
	if k < 1 {
		k = 1
	}
	return Mode{kind: kindQuorum, candidates: k}
}

// Candidates returns the candidate-initiator count of a Quorum mode and 0 for
// the other modes.
func (m Mode) Candidates() int { return m.candidates }

// String returns the mode name: "sync", "solo", "majority", or "quorum".
func (m Mode) String() string {
	switch m.kind {
	case kindSync:
		return "sync"
	case kindSolo:
		return "solo"
	case kindMajority:
		return "majority"
	case kindQuorum:
		return "quorum"
	default:
		return fmt.Sprintf("mode(%d)", int(m.kind))
	}
}

// Algorithm selects the allreduce wire algorithm used by Sync reducers and by
// the periodic full synchronization of the eager reducers.
type Algorithm int

// Available allreduce algorithms.
const (
	// Auto picks recursive doubling for small vectors and Rabenseifner's
	// algorithm for large ones, mirroring production MPI libraries.
	Auto Algorithm = iota
	RecursiveDoubling
	Ring
	Rabenseifner
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case RecursiveDoubling:
		return "recursive-doubling"
	case Ring:
		return "ring"
	case Rabenseifner:
		return "rabenseifner"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Transport selects the wire layer a World runs on.
type Transport int

const (
	// Inproc connects the ranks as goroutines within this process through
	// channels: zero configuration, used by tests, examples, and the
	// simulation harness.
	Inproc Transport = iota
	// TCP runs the same collectives over loopback TCP sockets, one listener
	// per rank on consecutive ports starting at the configured base port.
	TCP
	// Shm connects the ranks through per-pair SPSC shared rings: frames are
	// encoded in place into a ring span and decoded straight into pooled
	// vectors — zero syscalls per exchange. Combine with WithHosts to run a
	// mixed world where colocated rank pairs use rings and remote pairs TCP.
	Shm
	// Sim runs the ranks over the deterministic simulation transport: a
	// discrete-event network with a virtual clock where per-link latency and
	// per-rank compute skew are drawn from seed-derived streams (see
	// WithSimConfig). The full real stack runs unmodified on top, with no
	// sockets and no wall-clock sleeps, so worlds far larger than the socket
	// transports allow fit in one test process.
	Sim
)

// String returns the transport name.
func (t Transport) String() string {
	switch t {
	case Inproc:
		return "inproc"
	case TCP:
		return "tcp"
	case Shm:
		return "shm"
	case Sim:
		return "sim"
	default:
		return fmt.Sprintf("transport(%d)", int(t))
	}
}
