package collective_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/tensor"
)

// TestCanceledBucketStepsLeakNoLeases is the property test for the
// stream-tag-block accounting (DiscardTagRange hygiene): across many bucketed
// steps canceled concurrently at varying points mid-flight, every pooled
// lease — bucket snapshots queued on stream workers, results that resolved
// after abandonment, stray same-step payloads parked in unexpected queues —
// must be back in the pool once the world is closed. This pins the leak class
// that previously had to be fixed by hand.
func TestCanceledBucketStepsLeakNoLeases(t *testing.T) {
	const (
		size  = 4
		iters = 8
	)
	lens := []int{96, 64, 32, 16}
	dim := 0
	for _, l := range lens {
		dim += l
	}
	before := tensor.ReadPoolStats()
	for it := 0; it < iters; it++ {
		// A canceled Sync collective leaves the communicator mid-protocol, so
		// each iteration uses a fresh world; the property is that the whole
		// begin/submit/cancel/close cycle returns every lease, every time.
		w, err := collective.NewWorld(size, collective.WithMode(collective.Sync))
		if err != nil {
			t.Fatalf("world: %v", err)
		}
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			red, err := w.Node(r).Reducer(dim)
			if err != nil {
				t.Fatalf("reducer: %v", err)
			}
			br := red.(collective.BucketReducer)
			wg.Add(1)
			go func(r, it int, br collective.BucketReducer) {
				defer wg.Done()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				if err := br.BeginStep(ctx, lens); err != nil {
					return
				}
				// Vary the cancellation point per rank and iteration: after
				// 1..len(lens) submissions, deterministically.
				cancelAfter := 1 + (r+it)%len(lens)
				data := make(tensor.Vector, dim)
				off := 0
				for b, l := range lens {
					if _, err := br.SubmitBucket(ctx, off, data[off:off+l]); err != nil {
						break
					}
					off += l
					if b+1 == cancelAfter {
						cancel()
					}
				}
				_, _ = br.WaitStep(ctx) // abandons the remainder, purges tag blocks
			}(r, it, br)
		}
		wg.Wait()
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	after := tensor.ReadPoolStats()
	if n := after.OutstandingSince(before); n != 0 {
		t.Fatalf("%d canceled bucketed steps leaked %d pool leases%s", iters, n, tensor.FormatLeaseReport())
	}
}

// TestWorldCloseReleasesLeasesUnderMidStepPartition pins Close ordering when
// a bucketed step can never finish: a partition injected mid-step leaves
// WaitStep blocked on rounds that will never complete, and World.Close must
// still release every bucket lease (reducers close first, transports second,
// engines joined last) instead of deadlocking or leaking.
func TestWorldCloseReleasesLeasesUnderMidStepPartition(t *testing.T) {
	const size = 4
	lens := []int{64, 32}
	dim := 96
	before := tensor.ReadPoolStats()
	sc := collective.FaultScenario{Name: "midstep-partition", Seed: 3}
	w, err := collective.NewWorld(size,
		collective.WithMode(collective.Solo),
		collective.WithFaults(sc),
		collective.WithOverlap(),
		collective.WithBucketLayout(lens...),
	)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	inj := w.FaultInjector()

	// Drive a couple of clean steps, then partition rank 1 mid-step and close
	// the world while every rank is blocked in WaitStep.
	stepErrs := make([]error, size)
	submitted := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		red, err := w.Node(r).Reducer(dim)
		if err != nil {
			t.Fatalf("reducer: %v", err)
		}
		br := red.(collective.BucketReducer)
		wg.Add(1)
		go func(r int, br collective.BucketReducer) {
			defer wg.Done()
			ctx := context.Background()
			data := make(tensor.Vector, dim)
			for step := 0; ; step++ {
				if err := br.BeginStep(ctx, lens); err != nil {
					stepErrs[r] = err
					return
				}
				off := 0
				for _, l := range lens {
					if _, err := br.SubmitBucket(ctx, off, data[off:off+l]); err != nil {
						stepErrs[r] = err
						return
					}
					off += l
				}
				if step == 1 && r == 0 {
					// Mid-step (buckets submitted, results pending): cut rank
					// 1 off entirely. Solo rounds can no longer drain without
					// it on every rank; only Close can end the step.
					inj.IsolateRank(1)
					once.Do(func() { close(submitted) })
				}
				if _, err := br.WaitStep(ctx); err != nil {
					stepErrs[r] = err
					return
				}
			}
		}(r, br)
	}

	<-submitted
	time.Sleep(20 * time.Millisecond) // let the step wedge on the partition
	if err := w.Close(); err != nil {
		t.Fatalf("close under mid-step partition: %v", err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("a rank's bucketed step survived World.Close (WaitStep can never succeed, so Close must end it)")
	}
	for r, err := range stepErrs {
		if err == nil {
			t.Errorf("rank %d exited without an error despite the partitioned close", r)
		} else if !errors.Is(err, collective.ErrReducerClosed) && !errors.Is(err, context.Canceled) {
			// The exact surface depends on where the rank was caught
			// (submitting vs waiting); it must be a typed closed-ness error,
			// not a hang. Log for visibility.
			t.Logf("rank %d exited with %v", r, err)
		}
	}
	after := tensor.ReadPoolStats()
	if n := after.OutstandingSince(before); n != 0 {
		t.Fatalf("mid-step partitioned close leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}

// TestReduceAfterExternalMarkPeerDown covers the external failure-detector
// integration: a rank declared dead via Node.MarkPeerDown drops out of eager
// rounds (with WithPeerDeadline enabled) without any injected fault.
func TestReduceAfterExternalMarkPeerDown(t *testing.T) {
	const (
		size  = 4
		dim   = 32
		steps = 4
		dead  = 3
	)
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(size,
		collective.WithMode(collective.Solo),
		collective.WithPeerDeadline(2*time.Second),
	)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	// Rank `dead` never participates; every other node's detector declares it
	// dead up front (as a membership service would).
	for r := 0; r < size; r++ {
		if r == dead {
			continue
		}
		w.Node(r).MarkPeerDown(dead, fmt.Errorf("membership service: evicted"))
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		if r == dead {
			continue
		}
		red, err := w.Node(r).Reducer(dim)
		if err != nil {
			t.Fatalf("reducer: %v", err)
		}
		wg.Add(1)
		go func(r int, red collective.Reducer) {
			defer wg.Done()
			grad := make(tensor.Vector, dim)
			for s := 0; s < steps; s++ {
				res, err := red.Reduce(context.Background(), grad)
				if err != nil {
					errs[r] = err
					return
				}
				tensor.PutVector(res.Sum)
			}
		}(r, red)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("training with an evicted rank hung")
	}
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	if st := w.Peers()[dead]; st.Up {
		t.Error("World.Peers reports the evicted rank as up")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	after := tensor.ReadPoolStats()
	if n := after.OutstandingSince(before); n != 0 {
		t.Fatalf("run leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}
