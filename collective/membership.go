package collective

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"eagersgd/internal/faults"
	"eagersgd/internal/membership"
)

// RankID is the stable identity of a world member, distinct from its dense
// per-epoch rank index: assigned when the member first joins, never reused,
// and constant across every epoch the member belongs to. Founding members'
// IDs equal their epoch-0 ranks.
type RankID = membership.RankID

// Member is one participant of an epoch, as reported by Membership and
// OnMembershipChange.
type Member struct {
	// ID is the member's stable identity.
	ID RankID
	// Rank is the member's dense rank index in this epoch.
	Rank int
	// Addr is the transport address the member announced when joining (empty
	// for founding members).
	Addr string
}

// Epoch is one committed membership: the epoch counter plus the member set in
// dense rank order.
type Epoch struct {
	Number  uint64
	Members []Member
}

// Membership errors.
var (
	// ErrNotMember is returned by verbs naming a RankID outside the current
	// epoch, and by operations on a Node that has left the world.
	ErrNotMember = membership.ErrNotMember
	// ErrTransitionActive is returned when a second membership change is
	// requested while one is still in flight.
	ErrTransitionActive = membership.ErrTransitionActive
	// ErrElasticUnsupported is returned by membership verbs on worlds whose
	// transport cannot be reconfigured (currently the hybrid WithHosts
	// placement, whose host mapping is fixed at construction).
	ErrElasticUnsupported = errors.New("collective: this world's transport does not support membership changes")
	// ErrWorldClosed is returned by membership verbs once Close has begun.
	ErrWorldClosed = errors.New("collective: world is closed")
)

// stateTransferDeadline bounds each blocking receive of a joiner's state
// fetch when the world has no WithPeerDeadline configured.
const stateTransferDeadline = 5 * time.Second

// Membership returns the current committed epoch.
func (w *World) Membership() Epoch {
	view := w.tracker.View()
	return epochOf(view)
}

func epochOf(view membership.View) Epoch {
	e := Epoch{Number: view.Epoch, Members: make([]Member, len(view.Members))}
	for i, m := range view.Members {
		e.Members[i] = Member{ID: m.ID, Rank: i, Addr: m.Addr}
	}
	return e
}

// OnMembershipChange registers fn to be called after every committed epoch
// transition, outside the world's locks, with the new epoch. External
// schedulers subscribe here instead of polling Membership; training loops use
// it to re-fetch per-epoch handles (Node.Communicator) after a change.
func (w *World) OnMembershipChange(fn func(Epoch)) {
	w.mu.Lock()
	w.subs = append(w.subs, fn)
	w.mu.Unlock()
}

// Join admits a fresh member while training runs: the world transitions to
// the next epoch, in-flight steps drain at the epoch boundary, the model
// parameters are state-transferred to the joiner from the surviving members'
// state providers, and the returned Node is a full member of the new epoch —
// mint its reducers (same dim and options as everyone else) and start its
// training loop. addr is recorded as the member's announced address; for the
// in-process transports it is an opaque label.
func (w *World) Join(addr string) (*Node, error) {
	nodes, err := w.transition([]membership.Change{{Kind: membership.ChangeJoin, Addr: addr}})
	if err != nil {
		return nil, err
	}
	return nodes[0], nil
}

// Leave removes the member with the given stable ID at the next epoch
// boundary. The member's Node and reducers return ErrNotMember /
// ErrReducerClosed afterwards; its trainer should stop. The member itself
// need not be alive — Leave is also how a dead rank is excised without a
// replacement.
func (w *World) Leave(id RankID) error {
	_, err := w.transition([]membership.Change{{Kind: membership.ChangeLeave, Dead: id}})
	return err
}

// Replace excises a (typically dead) member and admits a fresh one in the
// same epoch transition — the crash-recovery verb. The replacement gets a new
// stable ID (identities are never reused) and receives the surviving
// members' model state exactly like a Join.
func (w *World) Replace(dead RankID, addr string) (*Node, error) {
	nodes, err := w.transition([]membership.Change{{Kind: membership.ChangeReplace, Dead: dead, Addr: addr}})
	if err != nil {
		return nil, err
	}
	return nodes[0], nil
}

// Reconfigure applies several membership changes in one epoch transition
// (e.g. growing a world by two ranks drains and rebuilds once, not twice).
// It returns the Nodes of the incoming members in change order.
func (w *World) Reconfigure(changes []membership.Change) ([]*Node, error) {
	return w.transition(changes)
}

// transition drives one epoch handoff end to end:
//
//	propose (coordinator elected from the PR 5 health view, re-elected if the
//	         health view says the coordinator itself is dead)
//	→ drain  (every live survivor finishes its in-flight steps and acks)
//	→ build  (next generation's transports; old epoch's tag blocks are
//	          registered as arrival-discard ranges on the new communicators)
//	→ transfer (joiners pull model state from surviving providers, resumable
//	            with failover if a source dies mid-transfer)
//	→ commit (nodes swap to the new generation, reducers re-mint over it,
//	          the old generation retires, subscribers are notified)
//
// Any failure — and Close racing the transition — takes the abort path
// instead: the half-built generation is retired, the outgoing epoch stays in
// force, and the drain barrier lifts so surviving trainers continue
// undisturbed. Either way the window is leak-free: every pool lease minted by
// the transition is released before it returns.
func (w *World) transition(changes []membership.Change) ([]*Node, error) {
	w.transMu.Lock()
	defer w.transMu.Unlock()
	if w.isClosing() {
		return nil, ErrWorldClosed
	}
	if len(w.cfg.hosts) > 0 {
		return nil, fmt.Errorf("%w: hybrid (WithHosts) placement is fixed at construction", ErrElasticUnsupported)
	}

	w.mu.Lock()
	oldGen := w.gen
	oldNodes := append([]*Node(nil), w.nodes...)
	w.mu.Unlock()

	isDown := w.downByID(oldGen, oldNodes)
	trans, err := w.tracker.Propose(changes, isDown)
	if err != nil {
		return nil, err
	}
	// Coordinator-death recovery: the proposer elected the lowest live ID,
	// but the health view may have aged between observation and proposal (or
	// a chaos scenario killed the coordinator in the window). Re-elect before
	// draining; a transition with no live member to coordinate cannot run.
	if isDown(trans.Coordinator()) {
		if _, ok := trans.Reelect(isDown); !ok {
			w.tracker.Abort(trans)
			return nil, membership.ErrNoCoordinator
		}
	}
	from, to := trans.From(), trans.To()

	// Drain: flip every survivor's barrier, wait for idle, ack per member.
	// Dead members are skipped (AllAcked ignores them); their wedged steps
	// unblock with errors when the old generation retires.
	//
	// The barrier admits catch-up rounds rather than parking members outright:
	// synchronous collectives are lockstep, so when the gate falls while one
	// member is mid-collective, its peers must run their matching round or the
	// drain deadlocks against the in-flight step. Reducers minted at the same
	// index across nodes form one matched group; each group's allowance is the
	// furthest round any member has started. The drain completes at a globally
	// idle instant (quiesceReducers), at which point unused allowances are
	// revoked — a member that stopped pumping below the target (its operations
	// errored on a dead peer) must not hold the epoch boundary open.
	trans.Advance(membership.PhaseDraining)
	survivors := make([]*Node, 0, len(oldNodes))
	for _, n := range oldNodes {
		if to.IndexOf(n.id) < 0 || isDown(n.id) {
			continue
		}
		survivors = append(survivors, n)
	}
	reducerSets := make([][]*elasticReducer, len(survivors))
	var allReducers []*elasticReducer
	groupTarget := make(map[int]uint64)
	for i, n := range survivors {
		reducerSets[i] = n.snapshotReducers()
		allReducers = append(allReducers, reducerSets[i]...)
		for idx, r := range reducerSets[i] {
			if started := r.beginDrain(); started > groupTarget[idx] {
				groupTarget[idx] = started
			}
		}
	}
	for _, rs := range reducerSets {
		for idx, r := range rs {
			r.allowRounds(groupTarget[idx])
		}
	}
	var drainWG sync.WaitGroup
	for i, n := range survivors {
		drainWG.Add(1)
		go func(n *Node, rs []*elasticReducer) {
			defer drainWG.Done()
			for _, r := range rs {
				r.awaitIdle()
			}
			trans.Ack(n.id)
		}(n, reducerSets[i])
	}
	drainWG.Wait()
	for !quiesceReducers(allReducers) {
		for _, r := range allReducers {
			r.awaitIdle()
		}
	}
	undrain := func() {
		for _, n := range survivors {
			for _, r := range n.snapshotReducers() {
				r.undrain()
			}
		}
	}
	if w.isClosing() {
		undrain()
		w.tracker.Abort(trans)
		return nil, ErrWorldClosed
	}

	// Build the next generation and blocklist the outgoing epoch's tag
	// blocks on its communicators: a straggler frame from epoch N is released
	// on arrival, never misdelivered into epoch N+1.
	newGen, err := w.buildGeneration(to.Epoch, to.Size(), false)
	if err != nil {
		undrain()
		w.tracker.Abort(trans)
		return nil, err
	}
	for _, c := range newGen.comms {
		for _, tr := range membership.EpochTagRanges(from.Epoch) {
			c.DiscardTagsOnArrival(tr[0], tr[1])
		}
	}
	// Members that were already down in the old epoch but remain in the view
	// (e.g. a Join while some rank is dead) stay down in the new one: carry
	// the verdict forward so nobody waits a fresh deadline on a known corpse.
	for _, m := range to.Members {
		if oldIdx := from.IndexOf(m.ID); oldIdx >= 0 && isDown(m.ID) {
			dense := to.IndexOf(m.ID)
			cause := w.downCause(oldGen, oldIdx)
			for _, c := range newGen.comms {
				c.MarkPeerDown(dense, cause)
			}
			if newGen.injector != nil {
				newGen.injector.Crash(dense)
			}
		}
	}

	abort := func() {
		newGen.closeComms()
		if newGen.injector != nil {
			newGen.injector.Close()
		}
		undrain()
		w.tracker.Abort(trans)
	}

	// State transfer: joiners pull the model parameters over the incoming
	// generation from every surviving member that registered a provider,
	// failing over down the source list if one dies mid-transfer.
	joinerNodes, err := w.transferState(trans, from, to, newGen, survivors)
	if err != nil || w.isClosing() {
		abort()
		if w.isClosing() {
			// A transfer canceled by Close reports the close, not the fetch.
			return nil, ErrWorldClosed
		}
		return nil, err
	}

	// Commit: re-mint every survivor's reducers over the new generation (the
	// retired inners are closed now and joined with the old generation), swap
	// the node handles, install the epoch, lift the barrier, retire the old
	// world, and notify subscribers.
	var retired []Reducer
	for _, n := range survivors {
		dense := to.IndexOf(n.id)
		for _, r := range n.snapshotReducers() {
			old, err := r.remint(newGen.comms[dense], to.Epoch)
			if err != nil {
				// A remint failure is unrecoverable mid-swap only if some
				// reducers already moved; with per-reducer remint the failure
				// mode is config-invariant (same cfg that built the original),
				// so treat it as fatal to the transition but roll nothing back.
				abort()
				return nil, fmt.Errorf("collective: reminting reducer for epoch %d: %w", to.Epoch, err)
			}
			retired = append(retired, old)
		}
	}
	for _, old := range retired {
		if err := old.Close(); err != nil && !errors.Is(err, ErrReducerClosed) {
			// Close on a drained reducer only fails on double close; ignore.
			_ = err
		}
	}

	w.mu.Lock()
	newNodes := make([]*Node, to.Size())
	for dense, m := range to.Members {
		if oldIdx := from.IndexOf(m.ID); oldIdx >= 0 {
			n := oldNodes[oldIdx]
			n.mu.Lock()
			n.comm = newGen.comms[dense]
			n.rank = dense
			n.epoch = to.Epoch
			n.mu.Unlock()
			newNodes[dense] = n
		} else {
			n := joinerNodes[m.ID]
			n.mu.Lock()
			n.comm = newGen.comms[dense]
			n.rank = dense
			n.epoch = to.Epoch
			n.mu.Unlock()
			newNodes[dense] = n
		}
	}
	w.nodes = newNodes
	w.gen = newGen
	subs := append([]func(Epoch){}, w.subs...)
	w.mu.Unlock()

	// Departed members: their handles go dead, their reducers close, so a
	// trainer still holding them observes ErrReducerClosed / ErrNotMember.
	for _, n := range oldNodes {
		if to.IndexOf(n.id) >= 0 {
			continue
		}
		n.mu.Lock()
		n.left = true
		departed := append([]*elasticReducer(nil), n.reducers...)
		n.mu.Unlock()
		for _, r := range departed {
			r.markClosed()
		}
	}

	w.tracker.Commit(trans)
	undrain()

	// Retire the outgoing generation: transports down, engines joined,
	// injector drained — zero outstanding leases from epoch N survive it.
	oldGen.closeComms()
	for _, old := range retired {
		if j, ok := old.(engineJoiner); ok {
			j.joinEngine()
		}
	}
	for _, n := range oldNodes {
		if to.IndexOf(n.id) >= 0 {
			continue
		}
		n.mu.Lock()
		departed := append([]*elasticReducer(nil), n.reducers...)
		n.mu.Unlock()
		for _, r := range departed {
			r.joinEngine()
		}
	}
	if oldGen.injector != nil {
		oldGen.injector.Close()
	}

	committed := epochOf(w.tracker.View())
	for _, fn := range subs {
		fn(committed)
	}

	out := make([]*Node, 0, len(trans.Joined()))
	for _, id := range trans.Joined() {
		out = append(out, joinerNodes[id])
	}
	return out, nil
}

// transferState runs the state-transfer phase: every surviving member with a
// registered provider serves its post-drain parameter snapshot over the new
// generation, and each joiner pulls the state with failover. It returns the
// joiner Nodes (keyed by stable ID) with their fetched initial state. Worlds
// without providers skip the wire protocol entirely.
func (w *World) transferState(trans *membership.Transition, from, to membership.View, newGen *generation, survivors []*Node) (map[RankID]*Node, error) {
	joiners := make(map[RankID]*Node)
	for _, id := range trans.Joined() {
		joiners[id] = &Node{world: w, id: id}
	}
	if len(joiners) == 0 {
		return joiners, nil
	}

	type source struct {
		node  *Node
		dense int
		snap  []float64
	}
	var sources []source
	for _, n := range survivors {
		n.mu.Lock()
		provider := n.stateProvider
		n.mu.Unlock()
		if provider == nil {
			continue
		}
		sources = append(sources, source{node: n, dense: to.IndexOf(n.id), snap: provider()})
	}
	if len(sources) == 0 {
		return joiners, nil // nothing to transfer; joiners start from scratch
	}

	trans.Advance(membership.PhaseTransferring)
	deadline := w.cfg.peerDeadline
	if deadline <= 0 {
		deadline = stateTransferDeadline
	}

	stopServe := make(chan struct{})
	var serveWG sync.WaitGroup
	for _, s := range sources {
		serveWG.Add(1)
		go func(s source) {
			defer serveWG.Done()
			membership.ServeState(newGen.comms[s.dense], s.snap, 0, stopServe)
		}(s)
	}
	srcRanks := make([]int, len(sources))
	for i, s := range sources {
		srcRanks[i] = s.dense
	}

	var fetchWG sync.WaitGroup
	fetchErrs := make(map[RankID]error, len(joiners))
	var fetchMu sync.Mutex
	for _, id := range trans.Joined() {
		fetchWG.Add(1)
		go func(id RankID) {
			defer fetchWG.Done()
			dense := to.IndexOf(id)
			state, err := membership.FetchState(newGen.comms[dense], srcRanks, deadline, w.closing)
			fetchMu.Lock()
			defer fetchMu.Unlock()
			if err != nil {
				fetchErrs[id] = err
				return
			}
			n := joiners[id]
			n.mu.Lock()
			n.initState = state
			n.mu.Unlock()
		}(id)
	}
	fetchWG.Wait()
	close(stopServe)
	serveWG.Wait()
	// Transfer-tag hygiene: the window is over, so any straggler transfer
	// frame on this generation (a suspected-slow source's late chunks) is
	// released on arrival from here on.
	for _, c := range newGen.comms {
		c.DiscardTagsOnArrival(membership.TransferTagBase, membership.TransferTagBase+3)
	}
	for _, err := range fetchErrs {
		return nil, fmt.Errorf("collective: state transfer to joiner: %w", err)
	}
	return joiners, nil
}

// downByID builds the transition's health verdict over the outgoing epoch,
// keyed by stable ID: a member is down once any communicator's failure
// detector marked it, or the fault injector crashed it.
func (w *World) downByID(g *generation, nodes []*Node) func(RankID) bool {
	down := make(map[RankID]bool, len(nodes))
	for i, n := range nodes {
		if w.downCause(g, i) != nil {
			down[n.id] = true
		}
	}
	return func(id RankID) bool { return down[id] }
}

// downCause returns the first recorded cause for the dense-ranked member
// being down in the given generation, or nil while it is believed up.
func (w *World) downCause(g *generation, dense int) error {
	for _, c := range g.comms {
		if err := c.PeerError(dense); err != nil {
			return err
		}
	}
	if g.injector != nil && g.injector.Crashed(dense) {
		return faults.ErrCrashed
	}
	return nil
}

func (w *World) isClosing() bool {
	select {
	case <-w.closing:
		return true
	default:
		return false
	}
}

// snapshotReducers returns the node's reducers minted so far.
func (n *Node) snapshotReducers() []*elasticReducer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*elasticReducer(nil), n.reducers...)
}
