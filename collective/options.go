package collective

import (
	"time"

	"eagersgd/internal/faults"
)

// DefaultBasePort is the first loopback port a TCP world listens on when
// WithBasePort is not given.
const DefaultBasePort = 29500

// config collects the settings shared by NewWorld, Node.Reducer, and
// NewReducer. World-level options (transport, base port) are ignored by
// reducer construction and vice versa where they do not apply.
type config struct {
	transport    Transport
	basePort     int
	mode         Mode
	algorithm    Algorithm
	syncEvery    int
	seed         int64
	chunks       int
	negotiate    bool
	segElems     int
	overlap      bool
	bucketElems  int
	layout       []int
	peerDeadline time.Duration
	faults       *faults.Scenario
	hosts        []int
	dialRetry    time.Duration
	sim          SimConfig

	// epoch and epochShift are internal: elastic worlds stamp them on the
	// option set handed to reducer construction so every reducer of epoch e
	// places its wire traffic in e's tag blocks (membership.CollectiveTagShift
	// / membership.PartialBaseTag). Both are zero for fixed worlds and
	// standalone NewReducer calls, which keeps the pre-elastic wire layout.
	epoch uint64
}

func defaultConfig() config {
	return config{
		transport: Inproc,
		basePort:  DefaultBasePort,
		mode:      Sync,
		algorithm: Auto,
		chunks:    1,
	}
}

func (c config) with(opts []Option) config {
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// Option configures a World or a Reducer. Options are applied in order; later
// options override earlier ones.
type Option func(*config)

// WithTransport selects the wire layer (Inproc, TCP, Shm, or Sim) the world
// runs on. Default Inproc.
func WithTransport(t Transport) Option {
	return func(c *config) { c.transport = t }
}

// WithBasePort sets the first loopback port of a TCP world; rank r listens on
// basePort+r. Default DefaultBasePort. Ignored by Inproc worlds.
func WithBasePort(port int) Option {
	return func(c *config) { c.basePort = port }
}

// WithMode selects the reduction behaviour: Sync, Solo, Majority, or
// Quorum(k). Default Sync.
func WithMode(m Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithAlgorithm selects the allreduce wire algorithm used by Sync reductions
// and the periodic full synchronization. Default Auto.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) { c.algorithm = a }
}

// WithSyncEvery makes every n-th Reduce call of an eager reducer a full
// synchronous allreduce that includes all ranks and drains the stale-gradient
// buffer — the periodic synchronization eager-SGD uses to bound staleness
// (§5). Every rank must use the same n (the calls are matched by index).
// n <= 0 (the default) disables it. Ignored by Sync reducers, which are
// always fully synchronous.
func WithSyncEvery(n int) Option {
	return func(c *config) { c.syncEvery = n }
}

// WithSeed sets the shared seed that drives the per-round random initiator
// selection of Majority and Quorum modes. Every rank must use the same seed
// (the shared-seed consensus of §4.2). Default 0.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithChunks makes a Sync reducer reduce the gradient in n ordered chunks
// instead of one fused allreduce, modelling the control dependencies a
// DAG-scheduled framework adds (the Deep500 baseline of §3). Values below 2
// mean a single fused reduction (the default).
func WithChunks(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.chunks = n
	}
}

// WithSegmentElems sets the pipeline segment size (in elements) of the
// synchronous allreduce algorithms: payload ranges larger than this stream in
// segments so that reducing one segment overlaps receiving the next and
// sending the previous. Zero (the default) selects the library default
// (currently 16Ki elements); a negative value disables segmentation and
// restores one message per hop. Every rank must use the same value (the
// segment stream is part of the wire protocol).
func WithSegmentElems(n int) Option {
	return func(c *config) { c.segElems = n }
}

// WithNegotiation prefixes every Sync reduction with a readiness consensus
// round before the fused allreduce, modelling Horovod's coordinator (§3).
// Off by default.
func WithNegotiation() Option {
	return func(c *config) { c.negotiate = true }
}

// WithOverlap asks training loops to use the bucketed gradient exchange
// (BucketReducer): instead of one blocking Reduce after the whole backward
// pass, layer-aligned buckets are submitted as backprop produces them, so the
// tail of the backward pass overlaps the head of the communication. The
// reducer itself always implements BucketReducer; this option is the signal a
// trainer reads (via OverlapSettings) to choose the overlapped step path.
// Off by default.
func WithOverlap() Option {
	return func(c *config) { c.overlap = true }
}

// WithBucketElems sets the bucket coalescing target of the overlapped
// exchange: adjacent layer segments are merged until a bucket holds at least
// n elements, trading per-bucket overhead against overlap granularity
// (Horovod/DDP-style fusion buckets). n <= 0 (the default) keeps one bucket
// per layer segment. Every rank must use the same value (the bucket layout is
// SPMD wire state).
func WithBucketElems(n int) Option {
	return func(c *config) { c.bucketElems = n }
}

// WithPeerDeadline enables rank-failure tolerance with the given
// failure-detector deadline. Sync reducers abort a reduction blocked on a
// dead rank with an error wrapping ErrRankUnreachable instead of hanging;
// the eager (partial) reducers treat a rank silent past the deadline as
// permanently failed — its data and activation flag drop out of every
// subsequent round, a dead designated initiator is failed over, and training
// continues with the surviving participant set. The deadline is a failure
// detector, not a latency bound: choose it far above any legitimate skew,
// because a rank it fires on is never readmitted. Zero (the default)
// disables failure tolerance.
func WithPeerDeadline(d time.Duration) Option {
	return func(c *config) { c.peerDeadline = d }
}

// WithFaults runs the world's transport through a deterministic fault
// injector executing the scenario: seed-driven per-link message drops,
// delays, reordering, one-way partitions, and scripted rank crashes. The
// injector is exposed through World.FaultInjector for runtime control
// (advancing crash-at-step counters, cutting links mid-step). Combine with
// WithPeerDeadline so the layers above detect the injected failures instead
// of blocking on them. Ignored by NewReducer (the injector wraps transport
// endpoints, which only the World builder constructs).
func WithFaults(sc FaultScenario) Option {
	return func(c *config) {
		copied := sc
		c.faults = &copied
	}
}

// WithHosts declares the host placement of the ranks: hosts[r] is an opaque
// host id and ranks sharing an id are colocated. A TCP world with a placement
// becomes a mixed-transport world — colocated rank pairs exchange over
// syscall-free shared rings (the Shm transport) while cross-host pairs keep
// their TCP sockets. One entry per rank is required. Inproc and Shm worlds,
// which are entirely same-host by construction, ignore the placement.
func WithHosts(hosts ...int) Option {
	return func(c *config) { c.hosts = append([]int(nil), hosts...) }
}

// WithDialRetry sets the total wall-clock budget a TCP world's dials keep
// retrying before giving up, covering both world bootstrap (every rank dialing
// its higher-ranked peers) and joiners dialing into an epoch transition. The
// retry loop backs off exponentially with jitter inside this window, so a
// large budget costs nothing once the peer is up. Zero (the default) keeps the
// transport's default window. Ignored by Inproc and Shm worlds, whose
// endpoints rendezvous in memory.
func WithDialRetry(d time.Duration) Option {
	return func(c *config) { c.dialRetry = d }
}

// withEpoch stamps the epoch whose tag blocks reducers built from this config
// must use. Internal: applied by elastic worlds when re-minting reducers after
// a transition.
func withEpoch(e uint64) Option {
	return func(c *config) { c.epoch = e }
}

// WithBucketLayout fixes the reducer's bucket layout at construction: lens
// are the bucket lengths in ascending offset order, summing to the reducer
// dimension. Eager reducers require this for overlapped steps — their
// engine's per-round schedules are built per bucket, so the layout cannot
// change after construction. Sync reducers accept any layout per BeginStep
// and ignore this option. Every rank must pass the same layout.
func WithBucketLayout(lens ...int) Option {
	return func(c *config) { c.layout = append([]int(nil), lens...) }
}
