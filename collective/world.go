package collective

import (
	"fmt"
	"sync"

	"eagersgd/internal/comm"
	"eagersgd/internal/faults"
	"eagersgd/internal/membership"
	"eagersgd/internal/simnet"
	"eagersgd/internal/transport"
)

// World is an elastic collective job: one Node per member over a shared
// transport, built from a single NewWorld call. All ranks live in this
// process (goroutines over channels for Inproc, loopback sockets for TCP),
// which is the deployment every experiment and test in this repository uses;
// multi-process TCP jobs construct their endpoints individually and use
// NewReducer directly.
//
// Membership is versioned by epoch: the world starts at epoch 0 with the
// NewWorld size, and Join, Leave, and Replace move it to the next epoch while
// training runs (see membership.go). Each epoch owns a complete transport
// generation — communicators, fault injector, tag blocks — retired wholesale
// when the epoch ends, so traffic from different epochs can never mix.
//
// Closing the world releases every member's transport resources, whichever
// transport is in use — callers must not rely on the in-process transport's
// close-one-closes-all behaviour, which TCP does not share.
type World struct {
	cfg config

	mu         sync.Mutex
	nodes      []*Node // current epoch's members, dense rank order
	gen        *generation
	tracker    *membership.Tracker
	subs       []func(Epoch)
	portCursor int // next unused TCP base port (per-epoch port blocks)

	// transMu serializes epoch transitions with each other and with Close.
	// closing is closed by Close before it takes transMu, so an in-flight
	// transition observes the shutdown at its next phase boundary and aborts.
	transMu sync.Mutex
	closing chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// generation is one epoch's transport stack. A transition builds the next
// generation, moves the nodes over, and retires this one.
type generation struct {
	epoch    uint64
	comms    []*comm.Communicator // dense rank order of the generation's view
	injector *faults.Injector     // non-nil when built WithFaults
	simHub   *simnet.Hub          // non-nil for Sim worlds (World.SimNow)

	commsOnce sync.Once // closeComms idempotence (Close can race a transition's retire)
	commsErr  error
}

// closeComms closes the generation's communicators (and with them the
// transport endpoints), idempotently.
func (g *generation) closeComms() error {
	g.commsOnce.Do(func() {
		for _, c := range g.comms {
			if err := c.Close(); err != nil && g.commsErr == nil {
				g.commsErr = err
			}
		}
	})
	return g.commsErr
}

// engineJoiner is implemented by reducers with background goroutines that
// only exit once the transport is closed; World.Close and generation
// retirement join them after closing the communicators.
type engineJoiner interface{ joinEngine() }

// Node is one member's view of a World: the handle reducers are minted from.
// The handle is stable across epochs — its ID never changes — while its dense
// rank, communicator, and world size follow the membership.
type Node struct {
	world *World
	id    membership.RankID

	mu            sync.Mutex
	comm          *comm.Communicator
	rank          int // dense rank in the current epoch
	epoch         uint64
	left          bool // no longer a member; operations fail
	reducers      []*elasticReducer
	stateProvider func() []float64
	initState     []float64 // joiners: parameters fetched during admission
}

// NewWorld builds a world of size ranks over the configured transport.
// Reducer-level options given here become the defaults for every
// Node.Reducer call.
func NewWorld(size int, opts ...Option) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("collective: world size %d must be positive", size)
	}
	cfg := defaultConfig().with(opts)
	w := &World{
		cfg:        cfg,
		tracker:    membership.NewTracker(size),
		portCursor: cfg.basePort,
		closing:    make(chan struct{}),
	}
	gen, err := w.buildGeneration(0, size, true)
	if err != nil {
		return nil, err
	}
	w.gen = gen
	w.nodes = make([]*Node, size)
	for r := 0; r < size; r++ {
		w.nodes[r] = &Node{world: w, id: membership.RankID(r), comm: gen.comms[r], rank: r}
	}
	return w, nil
}

// buildGeneration constructs the transport stack for one epoch's view.
// firstEpoch permits the hybrid (WithHosts) upgrade, which only the founding
// epoch supports. TCP generations consume a fresh block of consecutive ports
// from the port cursor, so a retired epoch's lingering sockets can never
// collide with the next epoch's listeners.
func (w *World) buildGeneration(epoch uint64, size int, firstEpoch bool) (*generation, error) {
	cfg := w.cfg
	eps := make([]comm.Endpoint, size)
	var simHub *simnet.Hub
	switch cfg.transport {
	case Inproc:
		hub := transport.NewHub(size)
		for r := 0; r < size; r++ {
			eps[r] = hub.Endpoint(r)
		}
	case TCP:
		basePort := w.portCursor
		// The cursor advances past the block even on failure: a bind that
		// lost a port race (ephemeral ports land anywhere) must make a
		// retried transition probe fresh ports, not re-collide forever.
		w.portCursor = basePort + size
		teps, err := transport.NewTCPEndpointsRetry(size, basePort, cfg.dialRetry)
		if err != nil {
			return nil, fmt.Errorf("collective: tcp world: %w", err)
		}
		for r := 0; r < size; r++ {
			eps[r] = teps[r]
		}
		if firstEpoch && len(cfg.hosts) > 0 {
			if err := mixWithSharedRings(eps, cfg.hosts); err != nil {
				for _, ep := range eps {
					ep.Close()
				}
				return nil, err
			}
		}
	case Shm:
		hub := transport.NewShmHub(size)
		for r := 0; r < size; r++ {
			eps[r] = hub.Endpoint(r)
		}
	case Sim:
		simHub = simnet.NewHub(size, simnet.Config{
			Seed:    cfg.sim.Seed,
			Latency: cfg.sim.Latency,
			Skew:    cfg.sim.Skew,
		})
		for r := 0; r < size; r++ {
			eps[r] = simHub.Endpoint(r)
		}
	default:
		return nil, fmt.Errorf("collective: unknown transport %v", cfg.transport)
	}
	g := &generation{epoch: epoch, simHub: simHub}
	if cfg.faults != nil {
		// The injector interposes between every endpoint and its
		// communicator, so all layers above experience the scenario's faults
		// through their ordinary interfaces. Each generation runs its own
		// injector: scripted per-rank state is per-epoch (a replaced rank's
		// crash does not haunt its successor's dense slot).
		g.injector = faults.NewInjector(size, *cfg.faults)
		for r := range eps {
			eps[r] = g.injector.Wrap(eps[r])
		}
	}
	g.comms = make([]*comm.Communicator, size)
	for r := 0; r < size; r++ {
		g.comms[r] = comm.NewCommunicator(eps[r])
	}
	return g, nil
}

// mixWithSharedRings upgrades a TCP world to a mixed-transport world per the
// WithHosts placement: every host group of two or more ranks gets a shared-
// ring hub carrying its intra-host traffic, and each member rank's endpoint
// becomes a hybrid that routes colocated sends through its ring and remote
// sends through the original TCP endpoint. Singleton ranks keep plain TCP.
func mixWithSharedRings(eps []comm.Endpoint, hosts []int) error {
	size := len(eps)
	if len(hosts) != size {
		return fmt.Errorf("collective: WithHosts gave %d host ids for %d ranks", len(hosts), size)
	}
	groups := make(map[int][]int)
	for r, h := range hosts {
		groups[h] = append(groups[h], r)
	}
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		hub := transport.NewShmHubFor(size, members, transport.DefaultRingBytes)
		colocated := make([]bool, size)
		for _, r := range members {
			colocated[r] = true
		}
		for _, r := range members {
			eps[r] = transport.NewHybridEndpoint(hub.Endpoint(r), eps[r], colocated)
		}
	}
	return nil
}

// Size returns the number of members in the current epoch.
func (w *World) Size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.nodes)
}

// Transport returns the wire layer the world runs on.
func (w *World) Transport() Transport { return w.cfg.transport }

// Mode returns the default reduction mode nodes mint reducers with.
func (w *World) Mode() Mode { return w.cfg.mode }

// Node returns the per-member handle at dense rank r of the current epoch.
func (w *World) Node(r int) *Node {
	w.mu.Lock()
	defer w.mu.Unlock()
	if r < 0 || r >= len(w.nodes) {
		panic(fmt.Sprintf("collective: rank %d out of range [0,%d)", r, len(w.nodes)))
	}
	return w.nodes[r]
}

// Nodes returns the current epoch's member handles, indexed by dense rank.
func (w *World) Nodes() []*Node {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*Node, len(w.nodes))
	copy(out, w.nodes)
	return out
}

// allReducers snapshots every live member's elastic reducers.
func (w *World) allReducers() []*elasticReducer {
	w.mu.Lock()
	nodes := append([]*Node(nil), w.nodes...)
	w.mu.Unlock()
	var out []*elasticReducer
	for _, n := range nodes {
		n.mu.Lock()
		out = append(out, n.reducers...)
		n.mu.Unlock()
	}
	return out
}

// Close shuts down every member's communicator and transport endpoint. It is
// the collective shutdown point of the job (call it after all ranks have
// stopped reducing), is safe to call more than once, and returns the first
// error encountered.
//
// Close first signals any in-flight epoch transition to abort, closes every
// reducer minted through Node.Reducer so an overlapped bucketed step caught
// in flight is released cleanly (queued bucket submissions resolve with
// ErrReducerClosed and return their pooled leases, pending handles and step
// waiters wake), and closes the current generation's transports — which in
// turn unblocks any bucket reduction already on the wire, and any drain a
// transition is still waiting on. Only then does it wait for the transition
// to finish aborting, join the reducer engines, and release the injector, so
// shutdown leaks no pool leases no matter what phase it interrupted.
func (w *World) Close() error {
	w.closeOnce.Do(func() {
		close(w.closing)
		reducers := w.allReducers()
		for _, r := range reducers {
			if err := r.markClosed(); err != nil && w.closeErr == nil {
				w.closeErr = err
			}
		}
		w.mu.Lock()
		gen := w.gen
		w.mu.Unlock()
		if err := gen.closeComms(); err != nil && w.closeErr == nil {
			w.closeErr = err
		}
		// Wait for an in-flight transition to observe the shutdown and abort;
		// it retires whatever half-built generation it was holding.
		w.transMu.Lock()
		defer w.transMu.Unlock()
		w.mu.Lock()
		final := w.gen
		w.mu.Unlock()
		if final != gen {
			if err := final.closeComms(); err != nil && w.closeErr == nil {
				w.closeErr = err
			}
		}
		// With the transports down, every reducer engine can (and must)
		// finish: join them so all their pool leases are back before Close
		// returns — the zero-leaked-leases shutdown guarantee.
		for _, r := range reducers {
			r.joinEngine()
		}
		for _, g := range []*generation{gen, final} {
			if g.injector != nil {
				// After the transports: delivery workers holding delayed
				// messages release their payloads back to the pool here.
				g.injector.Close()
			}
			if g == final {
				break
			}
		}
	})
	return w.closeErr
}

// ID returns the member's stable identity: assigned once when the member
// enters the world (founding members get IDs equal to their epoch-0 ranks)
// and never reused, even across leave/rejoin of the same address.
func (n *Node) ID() RankID { return n.id }

// Rank returns this member's dense rank in the current epoch, in [0, Size).
// It can change at an epoch boundary when lower-ranked members leave; use ID
// for a name that survives reconfiguration.
func (n *Node) Rank() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rank
}

// Epoch returns the membership epoch this node currently operates in.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Size returns the number of members in the node's current epoch.
func (n *Node) Size() int { return n.world.Size() }

// Reducer builds this member's Reducer for gradient vectors of length dim,
// using the world's options overridden by any options given here. Every
// member must build its reducer with the same dim and options (the engines
// are SPMD); a joiner admitted by Join or Replace mints its reducers with the
// same arguments the founding members used, after Join returns.
//
// The returned reducer is epoch-aware: it keeps working across membership
// transitions, draining at each epoch boundary and continuing over the new
// rank set, with Result.Ranks following the current world size.
func (n *Node) Reducer(dim int, opts ...Option) (Reducer, error) {
	// Serialize against transitions: a reducer minted here is either drained
	// by the next transition or built after it, never half-enrolled.
	n.world.transMu.Lock()
	defer n.world.transMu.Unlock()
	n.mu.Lock()
	if n.left {
		n.mu.Unlock()
		return nil, ErrNotMember
	}
	c, epoch := n.comm, n.epoch
	n.mu.Unlock()
	cfg := n.world.cfg.with(opts)
	r, err := newElasticReducer(n, dim, cfg, epoch, c)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.reducers = append(n.reducers, r)
	n.mu.Unlock()
	return r, nil
}

// SetStateProvider registers the function the world calls at an epoch
// boundary to snapshot this member's model parameters for state transfer to
// joiners. The snapshot runs after the drain barrier, so in synchronous modes
// every provider returns identical parameters; in eager modes the joiner
// receives one surviving member's view, which the next periodic
// synchronization reconciles. A nil provider (the default) opts the member
// out of serving state.
func (n *Node) SetStateProvider(fn func() []float64) {
	n.mu.Lock()
	n.stateProvider = fn
	n.mu.Unlock()
}

// InitialState returns the model parameters transferred to this member when
// it joined mid-training, or nil for founding members and worlds without
// state providers. The slice is owned by the caller.
func (n *Node) InitialState() []float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.initState
}

// Communicator exposes the node's underlying point-to-point communicator for
// advanced use (diagnostics, custom collectives, the internal training
// engine). The returned value is of an internal type; treat it as opaque —
// and re-fetch it after a membership change, because each epoch runs its own
// communicator generation.
func (n *Node) Communicator() *comm.Communicator {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.comm
}
