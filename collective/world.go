package collective

import (
	"fmt"
	"sync"

	"eagersgd/internal/comm"
	"eagersgd/internal/faults"
	"eagersgd/internal/transport"
)

// World is a fixed-size collective job: one Node per rank over a shared
// transport, built from a single NewWorld call. All ranks live in this
// process (goroutines over channels for Inproc, loopback sockets for TCP),
// which is the deployment every experiment and test in this repository uses;
// multi-process TCP jobs construct their endpoints individually and use
// NewReducer directly.
//
// Closing the world releases every rank's transport resources, whichever
// transport is in use — callers must not rely on the in-process transport's
// close-one-closes-all behaviour, which TCP does not share.
type World struct {
	cfg      config
	nodes    []*Node
	injector *faults.Injector // non-nil when built WithFaults

	mu       sync.Mutex
	reducers []Reducer // every reducer minted via Node.Reducer, for Close

	closeOnce sync.Once
	closeErr  error
}

// engineJoiner is implemented by reducers with background goroutines that
// only exit once the transport is closed; World.Close joins them after
// closing the communicators.
type engineJoiner interface{ joinEngine() }

// Node is one rank's view of a World: the handle reducers are minted from.
type Node struct {
	world *World
	comm  *comm.Communicator
	rank  int
}

// NewWorld builds a world of size ranks over the configured transport.
// Reducer-level options given here become the defaults for every
// Node.Reducer call.
func NewWorld(size int, opts ...Option) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("collective: world size %d must be positive", size)
	}
	cfg := defaultConfig().with(opts)
	eps := make([]comm.Endpoint, size)
	switch cfg.transport {
	case Inproc:
		hub := transport.NewHub(size)
		for r := 0; r < size; r++ {
			eps[r] = hub.Endpoint(r)
		}
	case TCP:
		teps, err := transport.NewTCPEndpoints(size, cfg.basePort)
		if err != nil {
			return nil, fmt.Errorf("collective: tcp world: %w", err)
		}
		for r := 0; r < size; r++ {
			eps[r] = teps[r]
		}
		if len(cfg.hosts) > 0 {
			if err := mixWithSharedRings(eps, cfg.hosts); err != nil {
				for _, ep := range eps {
					ep.Close()
				}
				return nil, err
			}
		}
	case Shm:
		hub := transport.NewShmHub(size)
		for r := 0; r < size; r++ {
			eps[r] = hub.Endpoint(r)
		}
	default:
		return nil, fmt.Errorf("collective: unknown transport %v", cfg.transport)
	}
	w := &World{cfg: cfg, nodes: make([]*Node, size)}
	if cfg.faults != nil {
		// The injector interposes between every endpoint and its
		// communicator, so all layers above experience the scenario's faults
		// through their ordinary interfaces.
		w.injector = faults.NewInjector(size, *cfg.faults)
		for r := range eps {
			eps[r] = w.injector.Wrap(eps[r])
		}
	}
	for r := 0; r < size; r++ {
		w.nodes[r] = &Node{world: w, comm: comm.NewCommunicator(eps[r]), rank: r}
	}
	return w, nil
}

// mixWithSharedRings upgrades a TCP world to a mixed-transport world per the
// WithHosts placement: every host group of two or more ranks gets a shared-
// ring hub carrying its intra-host traffic, and each member rank's endpoint
// becomes a hybrid that routes colocated sends through its ring and remote
// sends through the original TCP endpoint. Singleton ranks keep plain TCP.
func mixWithSharedRings(eps []comm.Endpoint, hosts []int) error {
	size := len(eps)
	if len(hosts) != size {
		return fmt.Errorf("collective: WithHosts gave %d host ids for %d ranks", len(hosts), size)
	}
	groups := make(map[int][]int)
	for r, h := range hosts {
		groups[h] = append(groups[h], r)
	}
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		hub := transport.NewShmHubFor(size, members, transport.DefaultRingBytes)
		colocated := make([]bool, size)
		for _, r := range members {
			colocated[r] = true
		}
		for _, r := range members {
			eps[r] = transport.NewHybridEndpoint(hub.Endpoint(r), eps[r], colocated)
		}
	}
	return nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return len(w.nodes) }

// Transport returns the wire layer the world runs on.
func (w *World) Transport() Transport { return w.cfg.transport }

// Mode returns the default reduction mode nodes mint reducers with.
func (w *World) Mode() Mode { return w.cfg.mode }

// Node returns the per-rank handle for rank r.
func (w *World) Node(r int) *Node {
	if r < 0 || r >= len(w.nodes) {
		panic(fmt.Sprintf("collective: rank %d out of range [0,%d)", r, len(w.nodes)))
	}
	return w.nodes[r]
}

// Nodes returns all per-rank handles, indexed by rank.
func (w *World) Nodes() []*Node {
	out := make([]*Node, len(w.nodes))
	copy(out, w.nodes)
	return out
}

// Close shuts down every rank's communicator and transport endpoint. It is
// the collective shutdown point of the job (call it after all ranks have
// stopped reducing), is safe to call more than once, and returns the first
// error encountered.
//
// Close first closes every reducer minted through Node.Reducer, so an
// overlapped bucketed step caught in flight is released cleanly: queued
// bucket submissions resolve with ErrReducerClosed and return their pooled
// leases, pending handles and step waiters wake, and only then does the
// transport go down — which in turn unblocks any bucket reduction already on
// the wire with an error instead of a deadlock.
func (w *World) Close() error {
	w.closeOnce.Do(func() {
		w.mu.Lock()
		reducers := w.reducers
		w.reducers = nil
		w.mu.Unlock()
		for _, r := range reducers {
			if err := r.Close(); err != nil && w.closeErr == nil {
				w.closeErr = err
			}
		}
		for _, n := range w.nodes {
			if err := n.comm.Close(); err != nil && w.closeErr == nil {
				w.closeErr = err
			}
		}
		// With the transports down, every reducer engine can (and must)
		// finish: join them so all their pool leases are back before Close
		// returns — the zero-leaked-leases shutdown guarantee.
		for _, r := range reducers {
			if j, ok := r.(engineJoiner); ok {
				j.joinEngine()
			}
		}
		if w.injector != nil {
			// After the transports: delivery workers holding delayed messages
			// release their payloads back to the pool here.
			w.injector.Close()
		}
	})
	return w.closeErr
}

// Rank returns this node's rank in [0, Size).
func (n *Node) Rank() int { return n.rank }

// Size returns the number of ranks in the world.
func (n *Node) Size() int { return len(n.world.nodes) }

// Reducer builds this rank's Reducer for gradient vectors of length dim,
// using the world's options overridden by any options given here. Every rank
// must build its reducer with the same dim and options (the engines are
// SPMD).
func (n *Node) Reducer(dim int, opts ...Option) (Reducer, error) {
	cfg := n.world.cfg.with(opts)
	r, err := NewReducer(n.comm, dim, func(c *config) { *c = cfg })
	if err != nil {
		return nil, err
	}
	n.world.mu.Lock()
	n.world.reducers = append(n.world.reducers, r)
	n.world.mu.Unlock()
	return r, nil
}

// Communicator exposes the node's underlying point-to-point communicator for
// advanced use (diagnostics, custom collectives, the internal training
// engine). The returned value is of an internal type; treat it as opaque.
func (n *Node) Communicator() *comm.Communicator { return n.comm }
