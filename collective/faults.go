package collective

import (
	"eagersgd/internal/comm"
	"eagersgd/internal/faults"
)

// The fault-injection substrate lives in internal/faults; these aliases are
// its public surface, following the same pattern as package harness. A
// FaultScenario describes deterministic, seed-driven faults per directed link
// (drops, delay distributions, reordering, one-way partitions) plus scripted
// rank crashes; pass one to WithFaults to run a world's transport through it.
type (
	// FaultScenario is the scriptable fault spec (see WithFaults).
	FaultScenario = faults.Scenario
	// FaultLink identifies one directed sender→receiver link.
	FaultLink = faults.Link
	// FaultLinkRule describes the faults injected on one link.
	FaultLinkRule = faults.LinkRule
	// FaultInjector executes a scenario; obtain a world's via FaultInjector.
	FaultInjector = faults.Injector
)

// ErrRankCrashed is returned by a crashed rank's own operations under an
// injected crash scenario.
var ErrRankCrashed = faults.ErrCrashed

// FaultInjector returns the injector executing the world's WithFaults
// scenario over the current epoch's transports, or nil when the world was
// built without one. Training loops call AdvanceStep on it at step boundaries
// so crash-at-step scripts fire deterministically; chaos tests use it to
// crash ranks and cut links at runtime. Each epoch runs its own injector —
// re-fetch the handle after a membership change (OnMembershipChange), because
// the previous epoch's injector retires with its transports.
func (w *World) FaultInjector() *FaultInjector {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen.injector
}

// PeerStatus is one member's health as observed by the world's failure
// detectors.
type PeerStatus struct {
	// Rank is the member's dense rank index within Epoch.
	Rank int
	// ID is the member's stable identity, constant across epochs; health
	// tracked across a reconfiguration must key on this, not on Rank, which
	// is reassigned at every epoch boundary.
	ID RankID
	// Epoch is the membership epoch this status describes.
	Epoch uint64
	// Up is false once any node's communicator has marked the member down
	// (or an injected fault scenario crashed it).
	Up bool
	// Err is the first cause recorded for the marking (nil while up): a
	// transport read failure, comm.ErrPeerDeadline, or an injected crash.
	Err error
}

// Peers returns the per-member health view of the current epoch: the member
// at dense rank r is reported down as soon as any node's failure detector
// marked it down, or the fault injector crashed it. A world without failures
// (and without deadlines or fault injection configured) reports every member
// up. This is the health view the epoch-transition coordinator election
// consumes.
func (w *World) Peers() []PeerStatus {
	w.mu.Lock()
	gen := w.gen
	nodes := append([]*Node(nil), w.nodes...)
	w.mu.Unlock()
	view := w.tracker.View()
	out := make([]PeerStatus, len(nodes))
	for r := range out {
		out[r] = PeerStatus{Rank: r, Up: true, Epoch: view.Epoch}
		if r < len(view.Members) {
			out[r].ID = view.Members[r].ID
		}
	}
	for _, c := range gen.comms {
		for r := range out {
			if !out[r].Up {
				continue
			}
			if err := c.PeerError(r); err != nil {
				out[r].Up = false
				out[r].Err = err
			}
		}
	}
	if gen.injector != nil {
		for r := range out {
			if out[r].Up && gen.injector.Crashed(r) {
				out[r].Up = false
				out[r].Err = faults.ErrCrashed
			}
		}
	}
	return out
}

// PeerDown reports whether this node's communicator has marked the rank down
// (see comm-level failure detection); the node's own rank is always up.
func (n *Node) PeerDown(rank int) bool { return n.comm.PeerDown(rank) }

// MarkPeerDown lets integrations with external failure detectors (a cluster
// membership service, an orchestrator's liveness probe) declare a rank dead
// on this node: blocked operations naming it unblock with a typed error and
// eager reducers drop it from subsequent rounds. The marking is sticky.
func (n *Node) MarkPeerDown(rank int, cause error) { n.comm.MarkPeerDown(rank, cause) }

// ErrPeerDown is the comm-layer sentinel matched by every peer-failure error
// surfaced through this package (errors.Is). See also ErrRankUnreachable.
var ErrPeerDown = comm.ErrPeerDown
