package collective

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
)

// runBucketedStep drives one bucketed step on every rank concurrently: each
// rank submits the layout's buckets in reverse order (the backward-pass
// order), waits the handles, then waits the step. It returns rank 0's
// assembled full vector and per-rank step results.
func runBucketedStep(t *testing.T, reducers []Reducer, lens []int, fill func(rank int, full tensor.Vector)) ([]tensor.Vector, []Result) {
	t.Helper()
	ranks := len(reducers)
	dim := 0
	offs := make([]int, len(lens))
	for b, l := range lens {
		offs[b] = dim
		dim += l
	}
	fulls := make([]tensor.Vector, ranks)
	results := make([]Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			br := reducers[r].(BucketReducer)
			grad := tensor.NewVector(dim)
			fill(r, grad)
			if err := br.BeginStep(ctx, lens); err != nil {
				errs[r] = err
				return
			}
			handles := make([]*BucketHandle, 0, len(lens))
			for b := len(lens) - 1; b >= 0; b-- {
				h, err := br.SubmitBucket(ctx, offs[b], grad[offs[b]:offs[b]+lens[b]])
				if err != nil {
					errs[r] = err
					return
				}
				handles = append(handles, h)
			}
			out := tensor.NewVector(dim)
			for _, h := range handles {
				sum, err := h.Wait(ctx)
				if err != nil {
					errs[r] = err
					return
				}
				out[h.Offset() : h.Offset()+h.Len()].CopyFrom(sum)
				tensor.PutVector(sum)
			}
			res, err := br.WaitStep(ctx)
			if err != nil {
				errs[r] = err
				return
			}
			fulls[r] = out
			results[r] = res
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return fulls, results
}

// TestSyncBucketedBitForBitSingleShot is the numerical-equivalence gate of
// the overlapped exchange: with recursive doubling (whose per-element
// reduction tree does not depend on the vector length), a bucketed step must
// produce bit-for-bit the sums of the one-shot Reduce on the in-process
// transport.
func TestSyncBucketedBitForBitSingleShot(t *testing.T) {
	const ranks = 4
	lens := []int{5, 17, 42}
	dim := 64
	fill := func(rank int, full tensor.Vector) {
		for i := range full {
			full[i] = float64(rank+1) * (1.0 + float64(i)*0.37)
		}
	}

	// Reference: one-shot Reduce over the full vector.
	refWorld, err := NewWorld(ranks, WithAlgorithm(RecursiveDoubling))
	if err != nil {
		t.Fatal(err)
	}
	defer refWorld.Close()
	refSums := make([]tensor.Vector, ranks)
	var wg sync.WaitGroup
	refErrs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			red, err := refWorld.Node(r).Reducer(dim)
			if err != nil {
				refErrs[r] = err
				return
			}
			grad := tensor.NewVector(dim)
			fill(r, grad)
			res, err := red.Reduce(context.Background(), grad)
			if err != nil {
				refErrs[r] = err
				return
			}
			refSums[r] = res.Sum
		}(r)
	}
	wg.Wait()
	for r, err := range refErrs {
		if err != nil {
			t.Fatalf("reference rank %d: %v", r, err)
		}
	}

	world, err := NewWorld(ranks, WithAlgorithm(RecursiveDoubling), WithOverlap())
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	reducers := make([]Reducer, ranks)
	for r := 0; r < ranks; r++ {
		if reducers[r], err = world.Node(r).Reducer(dim); err != nil {
			t.Fatal(err)
		}
	}
	fulls, results := runBucketedStep(t, reducers, lens, fill)
	for r := 0; r < ranks; r++ {
		for i := range fulls[r] {
			if fulls[r][i] != refSums[r][i] {
				t.Fatalf("rank %d element %d: bucketed %v != one-shot %v (must be bit-for-bit)", r, i, fulls[r][i], refSums[r][i])
			}
		}
		if res := results[r]; res.ActiveRanks != ranks || !res.Included {
			t.Fatalf("rank %d: sync bucketed result %+v, want full participation", r, res)
		}
	}
}

// TestEagerBucketedAllRanksArrive checks the eager bucketed step when every
// rank submits promptly: the participant accounting must report one
// consistent decision for the whole step.
func TestEagerBucketedAllRanksArrive(t *testing.T) {
	const ranks = 4
	lens := []int{8, 24}
	dim := 32
	world, err := NewWorld(ranks, WithMode(Solo), WithOverlap(), WithBucketLayout(lens...))
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	reducers := make([]Reducer, ranks)
	for r := 0; r < ranks; r++ {
		if reducers[r], err = world.Node(r).Reducer(dim); err != nil {
			t.Fatal(err)
		}
	}
	fulls, results := runBucketedStep(t, reducers, lens, func(rank int, full tensor.Vector) {
		full.Fill(1)
	})
	for r := 0; r < ranks; r++ {
		if results[r].ActiveRanks < 1 || results[r].ActiveRanks > ranks {
			t.Fatalf("rank %d: active ranks %d out of range", r, results[r].ActiveRanks)
		}
		// Every element of every bucket must reflect the same number of
		// contributions (step consistency at the value level: a solo round
		// sums whatever subset was snapshotted, identically per bucket).
		first := fulls[r][0]
		for i, v := range fulls[r] {
			if v != first {
				t.Fatalf("rank %d: element %d = %v differs from element 0 = %v; buckets observed different participant sets", r, i, v, first)
			}
		}
	}
}

// TestSubmitBucketRejectsUnknownOffset covers layout validation.
func TestSubmitBucketRejectsUnknownOffset(t *testing.T) {
	world, err := NewWorld(1, WithOverlap())
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	red, err := world.Node(0).Reducer(10)
	if err != nil {
		t.Fatal(err)
	}
	br := red.(BucketReducer)
	ctx := context.Background()
	if err := br.BeginStep(ctx, []int{4, 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := br.SubmitBucket(ctx, 2, tensor.NewVector(4)); err == nil {
		t.Fatal("submit at non-bucket offset should fail")
	}
	if _, err := br.SubmitBucket(ctx, 0, tensor.NewVector(3)); err == nil {
		t.Fatal("submit with wrong length should fail")
	}
	if _, err := br.SubmitBucket(ctx, 0, tensor.NewVector(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := br.SubmitBucket(ctx, 0, tensor.NewVector(4)); err == nil {
		t.Fatal("duplicate submit should fail")
	}
	if _, err := br.SubmitBucket(ctx, 4, tensor.NewVector(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := br.WaitStep(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWorldCloseDuringOverlappedStep is the shutdown regression test: closing
// the world while a bucketed step is stuck waiting on ranks that never
// submit must neither deadlock nor leak — the blocked handle waits and
// WaitStep return errors promptly.
func TestWorldCloseDuringOverlappedStep(t *testing.T) {
	const ranks = 2
	dim := 1 << 15 // large enough that the allreduce genuinely blocks on the peer
	world, err := NewWorld(ranks, WithAlgorithm(RecursiveDoubling), WithOverlap())
	if err != nil {
		t.Fatal(err)
	}
	red, err := world.Node(0).Reducer(dim)
	if err != nil {
		t.Fatal(err)
	}
	br := red.(BucketReducer)
	ctx := context.Background()
	if err := br.BeginStep(ctx, []int{dim}); err != nil {
		t.Fatal(err)
	}
	h, err := br.SubmitBucket(ctx, 0, tensor.NewVector(dim))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := h.Wait(ctx)
		if err == nil {
			done <- errors.New("handle resolved without a peer")
			return
		}
		_, err = br.WaitStep(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the bucket reach the wire
	if err := world.Close(); err != nil {
		t.Fatalf("world close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("WaitStep after world close should report an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bucketed step did not unblock after World.Close")
	}
}

// TestStepConsistencyAcrossBuckets is the step-consistency property test of
// the bucketed partial collectives: because the participation decision is
// made once per step and every rank's contribution is committed atomically,
// all buckets of one step must observe the identical participant set. Every
// rank contributes uniform vectors, so any fragmentation of the decision
// would show up as different values across buckets of one result. Runs on
// both transports with staggered rank arrivals over several steps.
func TestStepConsistencyAcrossBuckets(t *testing.T) {
	const ranks = 4
	const steps = 6
	lens := []int{6, 10, 16}
	dim := 32
	for ti, transport := range []Transport{Inproc, TCP} {
		transport := transport
		t.Run(transport.String(), func(t *testing.T) {
			opts := []Option{
				WithMode(Majority), WithSeed(11),
				WithOverlap(), WithBucketLayout(lens...),
				WithTransport(transport),
			}
			if transport == TCP {
				opts = append(opts, WithBasePort(30400+10*ti))
			}
			world, err := NewWorld(ranks, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer world.Close()

			offs := []int{0, 6, 16}
			errs := make([]error, ranks)
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					ctx := context.Background()
					red, err := world.Node(r).Reducer(dim)
					if err != nil {
						errs[r] = err
						return
					}
					br := red.(BucketReducer)
					grad := tensor.NewVector(dim)
					grad.Fill(1)
					for s := 0; s < steps; s++ {
						// Staggered arrivals: different ranks are fresh in
						// different rounds, so participant sets vary.
						time.Sleep(time.Duration(((r+s)%ranks)*3) * time.Millisecond)
						if err := br.BeginStep(ctx, lens); err != nil {
							errs[r] = err
							return
						}
						handles := make([]*BucketHandle, 0, len(lens))
						for b := len(lens) - 1; b >= 0; b-- {
							h, err := br.SubmitBucket(ctx, offs[b], grad[offs[b]:offs[b]+lens[b]])
							if err != nil {
								errs[r] = err
								return
							}
							handles = append(handles, h)
						}
						out := tensor.NewVector(dim)
						for _, h := range handles {
							sum, err := h.Wait(ctx)
							if err != nil {
								errs[r] = err
								return
							}
							out[h.Offset() : h.Offset()+h.Len()].CopyFrom(sum)
							tensor.PutVector(sum)
						}
						if _, err := br.WaitStep(ctx); err != nil {
							errs[r] = err
							return
						}
						first := out[0]
						for i, v := range out {
							if v != first {
								errs[r] = fmt.Errorf("step %d element %d = %v differs from element 0 = %v: buckets observed different participant sets", s, i, v, first)
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
		})
	}
}

// TestSubmitBucketCancellation covers context cancellation on the Sync
// bucketed path: with the peer absent, the bucket's allreduce can never
// complete; canceling the submission context must resolve the handle and
// WaitStep with the context's error instead of hanging.
func TestSubmitBucketCancellation(t *testing.T) {
	world, err := NewWorld(2, WithAlgorithm(RecursiveDoubling), WithOverlap())
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	red, err := world.Node(0).Reducer(64)
	if err != nil {
		t.Fatal(err)
	}
	br := red.(BucketReducer)
	ctx, cancel := context.WithCancel(context.Background())
	if err := br.BeginStep(ctx, []int{64}); err != nil {
		t.Fatal(err)
	}
	h, err := br.SubmitBucket(ctx, 0, tensor.NewVector(64))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	done := make(chan error, 1)
	go func() {
		if _, err := h.Wait(ctx); !errors.Is(err, context.Canceled) {
			done <- fmt.Errorf("handle Wait error = %v, want context.Canceled", err)
			return
		}
		if _, err := br.WaitStep(ctx); !errors.Is(err, context.Canceled) {
			done <- fmt.Errorf("WaitStep error = %v, want context.Canceled", err)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled bucketed step did not unblock")
	}
}

// TestWaitStepCancellationEager covers context cancellation on the eager
// bucketed path: in Majority mode with the designated initiator absent, the
// round cannot complete; WaitStep must return the context's error, and per
// eager-SGD cancellation semantics the reducer stays usable (the
// contribution remains buffered as a stale gradient).
func TestWaitStepCancellationEager(t *testing.T) {
	// Find a seed whose round-0 designated initiator is rank 1 (who never
	// arrives in this test).
	var seed int64
	for s := int64(0); ; s++ {
		world, err := NewWorld(2, WithMode(Majority), WithSeed(s), WithOverlap(), WithBucketLayout(8, 8))
		if err != nil {
			t.Fatal(err)
		}
		red, err := world.Node(0).Reducer(16)
		if err != nil {
			t.Fatal(err)
		}
		inits := red.(interface{ Allreducer() *partial.Allreducer }).Allreducer().DesignatedInitiators(0)
		world.Close()
		if len(inits) == 1 && inits[0] == 1 {
			seed = s
			break
		}
	}
	world, err := NewWorld(2, WithMode(Majority), WithSeed(seed), WithOverlap(), WithBucketLayout(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	red, err := world.Node(0).Reducer(16)
	if err != nil {
		t.Fatal(err)
	}
	br := red.(BucketReducer)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := br.BeginStep(ctx, []int{8, 8}); err != nil {
		t.Fatal(err)
	}
	grad := tensor.NewVector(16)
	grad.Fill(1)
	if _, err := br.SubmitBucket(ctx, 8, grad[8:]); err != nil {
		t.Fatal(err)
	}
	if _, err := br.SubmitBucket(ctx, 0, grad[:8]); err != nil {
		t.Fatal(err)
	}
	if _, err := br.WaitStep(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitStep error = %v, want context.DeadlineExceeded", err)
	}
	// The canceled wait only abandoned the result: the contribution stays
	// buffered as a stale gradient, visible through the diagnostics surface.
	ar := red.(interface{ Allreducer() *partial.Allreducer }).Allreducer()
	if ar.PendingStale() == 0 {
		t.Fatal("canceled step's contribution should remain buffered as stale gradient")
	}
}

// TestCloseRacesSubmitBucket closes the world from another goroutine while a
// rank is still submitting buckets: every submission must either enqueue and
// later resolve with an error or fail cleanly with ErrReducerClosed — never
// panic or deadlock.
func TestCloseRacesSubmitBucket(t *testing.T) {
	for round := 0; round < 20; round++ {
		world, err := NewWorld(2, WithAlgorithm(RecursiveDoubling), WithOverlap())
		if err != nil {
			t.Fatal(err)
		}
		const buckets = 16
		lens := make([]int, buckets)
		for i := range lens {
			lens[i] = 64
		}
		red, err := world.Node(0).Reducer(buckets * 64)
		if err != nil {
			t.Fatal(err)
		}
		br := red.(BucketReducer)
		ctx := context.Background()
		if err := br.BeginStep(ctx, lens); err != nil {
			t.Fatal(err)
		}
		closed := make(chan struct{})
		go func() {
			defer close(closed)
			world.Close()
		}()
		var handles []*BucketHandle
		for b := 0; b < buckets; b++ {
			h, err := br.SubmitBucket(ctx, b*64, tensor.NewVector(64))
			if err != nil {
				break // reducer closed underneath us: fine
			}
			handles = append(handles, h)
		}
		<-closed
		done := make(chan struct{})
		go func() {
			defer close(done)
			for _, h := range handles {
				if sum, err := h.Wait(ctx); err == nil {
					tensor.PutVector(sum)
				}
			}
			_, _ = br.WaitStep(ctx)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("step did not unblock after racing Close")
		}
	}
}
