package collective

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/membership"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
)

// NewReducer builds a Reducer of the configured mode directly over a
// communicator. This is the advanced constructor used by the internal
// training engine and by code that manages its own transport; most programs
// obtain reducers from World.Node(r).Reducer, which forwards here with the
// world's options.
//
// dim is the fixed gradient length; every rank must construct its reducer
// with the same dim and the same mode, seed, and sync period (the engines are
// SPMD).
func NewReducer(c *comm.Communicator, dim int, opts ...Option) (Reducer, error) {
	if c == nil {
		return nil, errors.New("collective: nil communicator")
	}
	if dim <= 0 {
		return nil, fmt.Errorf("collective: reducer dimension %d must be positive", dim)
	}
	cfg := defaultConfig().with(opts)
	algo, err := wireAlgorithm(cfg.algorithm)
	if err != nil {
		return nil, err
	}
	if len(cfg.layout) > 0 {
		if _, err := validateLayout(dim, cfg.layout); err != nil {
			return nil, err
		}
	}
	// Epoch tag namespacing (elastic worlds): every collective of epoch e is
	// shifted into e's private tag block, so a straggler frame from a retired
	// epoch can be recognized and discarded instead of matching a same-tag
	// receive of the current one. Epoch 0 shifts by zero — fixed worlds and
	// standalone reducers keep the pre-elastic wire layout.
	tagShift := membership.CollectiveTagShift(cfg.epoch)
	switch cfg.mode.kind {
	case kindSync:
		return &syncReducer{
			comm: c, dim: dim, algo: algo,
			chunks: cfg.chunks, negotiate: cfg.negotiate, segElems: cfg.segElems,
			overlap: cfg.overlap, bucketElems: cfg.bucketElems,
			peerDeadline: cfg.peerDeadline, tagShift: tagShift,
		}, nil
	case kindSolo, kindMajority, kindQuorum:
		popts := partial.Options{
			Seed: cfg.seed, Buckets: cfg.layout, PeerDeadline: cfg.peerDeadline,
			BaseTag: membership.PartialBaseTag(cfg.epoch),
		}
		switch cfg.mode.kind {
		case kindSolo:
			popts.Mode = partial.Solo
		case kindMajority:
			popts.Mode = partial.Majority
		default:
			popts.Mode = partial.Quorum
			popts.Candidates = cfg.mode.candidates
		}
		e := &eagerReducer{
			comm:         c,
			ar:           partial.New(c, dim, popts),
			mode:         cfg.mode,
			algo:         algo,
			dim:          dim,
			syncEvery:    cfg.syncEvery,
			segElems:     cfg.segElems,
			overlap:      cfg.overlap,
			bucketElems:  cfg.bucketElems,
			peerDeadline: cfg.peerDeadline,
			tagShift:     tagShift,
		}
		e.lens, e.offs = e.layoutOf()
		return e, nil
	default:
		return nil, fmt.Errorf("collective: unknown mode %v", cfg.mode)
	}
}

func wireAlgorithm(a Algorithm) (collectives.Algorithm, error) {
	switch a {
	case Auto:
		return collectives.AlgoAuto, nil
	case RecursiveDoubling:
		return collectives.AlgoRecursiveDoubling, nil
	case Ring:
		return collectives.AlgoRing, nil
	case Rabenseifner:
		return collectives.AlgoRabenseifner, nil
	default:
		return 0, fmt.Errorf("collective: unknown algorithm %v", a)
	}
}

// ctxError converts the comm layer's cancellation sentinel into the context's
// own error so callers see context.Canceled / DeadlineExceeded.
func ctxError(ctx context.Context, err error) error {
	if errors.Is(err, comm.ErrCanceled) && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// syncReducer is the Sync mode: a blocking allreduce per call, optionally
// chunked (Deep500-style) or preceded by a negotiation round (Horovod-style).
// It also implements BucketReducer (bucket.go): the bucketed step runs each
// bucket's allreduce on a stream worker as soon as the bucket is submitted.
type syncReducer struct {
	comm      *comm.Communicator
	dim       int
	algo      collectives.Algorithm
	chunks    int
	negotiate bool
	segElems  int
	calls     int

	overlap      bool
	bucketElems  int
	peerDeadline time.Duration
	tagShift     int // epoch tag-block shift (membership.CollectiveTagShift)

	// mu guards the bucketed-step fields below: the step API itself is
	// driven by one goroutine (the rank's training loop), but Close may be
	// called concurrently by World.Close while a step is in flight.
	mu        sync.Mutex
	streams   *bucketStreams // lazily started stream workers (bucket.go)
	step      *syncStep      // in-flight bucketed step, nil between steps
	closed    bool
	closeOnce sync.Once
}

// Name identifies the reducer in reports.
func (s *syncReducer) Name() string {
	switch {
	case s.negotiate:
		return "synch-sgd (horovod)"
	case s.chunks > 1:
		return "synch-sgd (deep500)"
	default:
		return "synch-sgd"
	}
}

// Reduce performs the synchronous allreduce. Canceling ctx aborts a blocked
// reduction; the collective is then mid-protocol on this rank, so the only
// safe follow-up is closing the world.
func (s *syncReducer) Reduce(ctx context.Context, grad tensor.Vector) (Result, error) {
	if len(grad) != s.dim {
		return Result{}, fmt.Errorf("collective: gradient length %d, want %d", len(grad), s.dim)
	}
	call := s.calls
	s.calls++
	cancel := ctx.Done()
	sum := tensor.GetVectorCopy(grad)
	if s.negotiate {
		// Readiness consensus (Horovod's coordinator round), then one fused
		// allreduce over the whole gradient.
		ready := tensor.GetVector(1)
		ready[0] = 1
		err := collectives.AllreduceWith(s.comm, ready, collectives.OpSum, collectives.AlgoRecursiveDoubling, collectives.Config{TagOffset: s.tagShift, PeerDeadline: s.peerDeadline}, cancel)
		tensor.PutVector(ready)
		if err != nil {
			tensor.PutVector(sum)
			return Result{}, ctxError(ctx, err)
		}
	}
	wireCfg := collectives.Config{SegmentElems: s.segElems, TagOffset: s.tagShift, PeerDeadline: s.peerDeadline}
	if s.chunks > 1 {
		for i := 0; i < s.chunks; i++ {
			lo, hi := tensor.ChunkBounds(len(sum), s.chunks, i)
			if lo == hi {
				continue
			}
			if err := collectives.AllreduceWith(s.comm, sum[lo:hi], collectives.OpSum, s.algo, wireCfg, cancel); err != nil {
				tensor.PutVector(sum)
				return Result{}, ctxError(ctx, err)
			}
		}
	} else if err := collectives.AllreduceWith(s.comm, sum, collectives.OpSum, s.algo, wireCfg, cancel); err != nil {
		tensor.PutVector(sum)
		return Result{}, ctxError(ctx, err)
	}
	size := s.comm.Size()
	return Result{Sum: sum, Ranks: size, ActiveRanks: size, Included: true, Round: call}, nil
}

// eagerReducer wraps a partial.Allreducer in the Reducer interface and adds
// the periodic full synchronization of WithSyncEvery. It also implements
// BucketReducer (bucket.go): buckets are staged during backprop, committed to
// the engine in one atomic fold (one participation decision per step), and
// their results resolve as the engine's per-bucket chains complete.
type eagerReducer struct {
	comm      *comm.Communicator
	ar        *partial.Allreducer
	mode      Mode
	algo      collectives.Algorithm
	dim       int
	syncEvery int
	segElems  int
	calls     int

	overlap      bool
	bucketElems  int
	peerDeadline time.Duration
	tagShift     int            // epoch tag-block shift (membership.CollectiveTagShift)
	reapers      sync.WaitGroup // detached periodic-sync reapers (bucket.go)
	lens, offs   []int          // the engine's fixed bucket layout (layoutOf)
	stepBuf      tensor.Vector  // staging buffer for the in-flight step's buckets
	estep        *eagerStep     // in-flight bucketed step, nil between steps
}

// Name identifies the reducer in reports.
func (e *eagerReducer) Name() string { return fmt.Sprintf("eager-sgd (%s)", e.mode) }

// Allreducer exposes the underlying partial allreducer for diagnostics (NAP
// counters, designated initiators, pending stale norm).
func (e *eagerReducer) Allreducer() *partial.Allreducer { return e.ar }

// Reduce contributes grad to the current partial-allreduce round, or — on
// every syncEvery-th call — performs a full synchronous allreduce that also
// drains the stale-gradient buffer, so no contribution outlives a
// synchronization period. Canceling ctx on the eager path abandons only the
// wait: the contribution stays buffered and the engine keeps serving peers,
// so the reducer remains usable.
func (e *eagerReducer) Reduce(ctx context.Context, grad tensor.Vector) (Result, error) {
	if len(grad) != e.dim {
		return Result{}, fmt.Errorf("collective: gradient length %d, want %d", len(grad), e.dim)
	}
	call := e.calls
	e.calls++
	if e.syncEvery > 0 && (call+1)%e.syncEvery == 0 {
		drained := e.ar.DrainPending()
		sum := tensor.GetVectorCopy(grad)
		sum.Add(drained)
		if err := collectives.AllreduceWith(e.comm, sum, collectives.OpSum, e.algo, collectives.Config{SegmentElems: e.segElems, TagOffset: e.tagShift, PeerDeadline: e.peerDeadline}, ctx.Done()); err != nil {
			// Preserve the no-gradient-lost guarantee: the fresh gradient and
			// the drained stale contributions return to the send buffer and
			// are delivered in a later round.
			drained.Add(grad)
			e.ar.RestorePending(drained)
			tensor.PutVector(drained)
			tensor.PutVector(sum)
			return Result{}, ctxError(ctx, err)
		}
		tensor.PutVector(drained)
		size := e.comm.Size()
		return Result{Sum: sum, Ranks: size, ActiveRanks: size, Included: true, Round: call}, nil
	}
	sum, info, err := e.ar.ExchangeContext(ctx, grad)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Sum:         sum,
		Ranks:       e.comm.Size(),
		ActiveRanks: info.ActiveProcesses,
		Included:    info.Included,
		Round:       info.Round,
	}, nil
}

// Close marks the underlying allreducer closed. The background engine exits
// when the world (communicator) is closed.
func (e *eagerReducer) Close() error {
	e.ar.Close()
	return nil
}

// joinEngine blocks until the partial engine and any detached
// periodic-synchronization reapers have exited and returned their buffers to
// the pool. Only valid after the communicator is closed; World.Close calls it
// so shutdown leaks no pool leases.
func (e *eagerReducer) joinEngine() {
	e.ar.Join()
	e.reapers.Wait()
}
