package collective_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/tensor"
)

// simTestConfig is the virtual network every test here runs on: seeded link
// jitter plus heavy-tailed compute skew, the paper's straggler regime.
func simTestConfig(seed uint64) collective.SimConfig {
	return collective.SimConfig{
		Seed:    seed,
		Latency: collective.SimUniform(20*time.Microsecond, 120*time.Microsecond),
		Skew:    collective.SimPareto(50*time.Microsecond, 1.3, 20*time.Millisecond),
	}
}

// TestSimWorldSyncMatchesInproc runs the same synchronous reduction over the
// Sim transport and over inproc: the Sim transport only reschedules
// deliveries in virtual time, so the arithmetic must agree bit for bit. Also
// pins World.SimNow: the virtual clock advances for Sim worlds and reports
// ok=false elsewhere.
func TestSimWorldSyncMatchesInproc(t *testing.T) {
	const (
		size   = 5 // non-power-of-two exercises the fold paths
		dim    = 17
		rounds = 4
	)
	before := tensor.ReadPoolStats()
	run := func(opts ...collective.Option) ([][]tensor.Vector, *collective.World) {
		opts = append([]collective.Option{collective.WithMode(collective.Sync)}, opts...)
		w, err := collective.NewWorld(size, opts...)
		if err != nil {
			t.Fatalf("world: %v", err)
		}
		sums := make([][]tensor.Vector, size)
		runRanks(t, size, func(rank int) error {
			red, err := w.Node(rank).Reducer(dim)
			if err != nil {
				return err
			}
			defer red.Close()
			for round := 0; round < rounds; round++ {
				grad := tensor.NewVector(dim)
				for i := range grad {
					grad[i] = float64((rank + 1) * (round + 1))
				}
				res, err := red.Reduce(context.Background(), grad)
				if err != nil {
					return err
				}
				sums[rank] = append(sums[rank], res.Sum)
			}
			return nil
		})
		return sums, w
	}

	inprocSums, inprocWorld := run(collective.WithTransport(collective.Inproc))
	if _, ok := inprocWorld.SimNow(); ok {
		t.Error("SimNow reported ok for an inproc world")
	}
	simSums, simWorld := run(
		collective.WithTransport(collective.Sim),
		collective.WithSimConfig(simTestConfig(11)),
	)
	if now, ok := simWorld.SimNow(); !ok {
		t.Error("SimNow reported !ok for a Sim world")
	} else if now <= 0 {
		t.Errorf("virtual clock did not advance across %d reductions: %v", rounds, now)
	}

	for rank := 0; rank < size; rank++ {
		for round := 0; round < rounds; round++ {
			if !simSums[rank][round].Equal(inprocSums[rank][round]) {
				t.Fatalf("rank %d round %d: sim sum %v != inproc sum %v",
					rank, round, simSums[rank][round], inprocSums[rank][round])
			}
		}
	}
	for _, sums := range [][][]tensor.Vector{inprocSums, simSums} {
		for _, perRank := range sums {
			for _, s := range perRank {
				tensor.PutVector(s)
			}
		}
	}
	if err := inprocWorld.Close(); err != nil {
		t.Fatalf("inproc close: %v", err)
	}
	if err := simWorld.Close(); err != nil {
		t.Fatalf("sim close: %v", err)
	}
	after := tensor.ReadPoolStats()
	if n := after.OutstandingSince(before); n != 0 {
		t.Fatalf("paired sim/inproc run leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}

// TestSimWorldEagerAtScale trains a solo world of 64 ranks — beyond what the
// socket transports comfortably host in one test — over heavy-tailed
// simulated skew, and requires every rank to finish with clean lease
// accounting. This is the Sim transport's reason to exist: the real stack at
// sizes sockets cannot reach.
func TestSimWorldEagerAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank world takes a moment")
	}
	const (
		size  = 64
		dim   = 32
		steps = 3
	)
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(size,
		collective.WithTransport(collective.Sim),
		collective.WithSimConfig(simTestConfig(23)),
		collective.WithMode(collective.Solo),
		collective.WithSeed(23),
	)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	runRanks(t, size, func(rank int) error {
		red, err := w.Node(rank).Reducer(dim)
		if err != nil {
			return err
		}
		defer red.Close()
		grad := make(tensor.Vector, dim)
		for s := 0; s < steps; s++ {
			res, err := red.Reduce(context.Background(), grad)
			if err != nil {
				return err
			}
			tensor.PutVector(res.Sum)
		}
		return nil
	})
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	after := tensor.ReadPoolStats()
	if n := after.OutstandingSince(before); n != 0 {
		t.Fatalf("64-rank sim run leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}

// TestChaosSimRankCrashPartialTraining replays the PR 5 acceptance scenario —
// a scripted rank crash mid-training with deadline detection — on the Sim
// transport: the fault injector wraps simulated endpoints exactly as it wraps
// socket endpoints, survivors complete every step, the crashed rank observes
// its death as an error (never a hang), and nothing leaks.
func TestChaosSimRankCrashPartialTraining(t *testing.T) {
	const (
		size      = 4
		dim       = 48
		steps     = 6
		crashRank = 2
		crashStep = 2
	)
	before := tensor.ReadPoolStats()
	sc := collective.FaultScenario{
		Name:          "sim-crash",
		Seed:          1,
		CrashAtStep:   map[int]int{crashRank: crashStep},
		SignalCrashes: true,
	}
	w, err := collective.NewWorld(size,
		collective.WithTransport(collective.Sim),
		collective.WithSimConfig(simTestConfig(31)),
		collective.WithMode(collective.Solo),
		collective.WithSeed(1),
		collective.WithPeerDeadline(5*time.Second),
		collective.WithFaults(sc),
	)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	inj := w.FaultInjector()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	completed := make([]int, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		red, err := w.Node(r).Reducer(dim)
		if err != nil {
			t.Fatalf("rank %d reducer: %v", r, err)
		}
		wg.Add(1)
		go func(r int, red collective.Reducer) {
			defer wg.Done()
			grad := make(tensor.Vector, dim)
			for s := 0; s < steps; s++ {
				res, err := red.Reduce(ctx, grad)
				if err != nil {
					errs[r] = err
					return
				}
				tensor.PutVector(res.Sum)
				completed[r]++
				inj.AdvanceStep(r)
			}
		}(r, red)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("sim chaos scenario hung: a rank's reduction neither completed nor failed")
	}

	for r := 0; r < size; r++ {
		if r == crashRank {
			if completed[r] < crashStep {
				t.Errorf("crashed rank completed %d steps, scripted to reach %d", completed[r], crashStep)
			}
			if completed[r] < steps && errs[r] == nil {
				t.Errorf("crashed rank stopped at step %d with no error", completed[r])
			}
			continue
		}
		if completed[r] != steps {
			t.Errorf("survivor %d completed %d of %d steps (err=%v)", r, completed[r], steps, errs[r])
		}
	}
	if st := w.Peers()[crashRank]; st.Up {
		t.Errorf("World.Peers reports crashed rank %d up", crashRank)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	after := tensor.ReadPoolStats()
	if n := after.OutstandingSince(before); n != 0 {
		t.Fatalf("sim crash scenario leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}
