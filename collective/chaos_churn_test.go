package collective_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/tensor"
)

// TestChaosChurnScenarios is the elastic-membership leg of the chaos matrix:
// the three churn shapes (crash→replace, join-under-load, coordinator-kill)
// run over {inproc, tcp} × seeds with jittery delaying links. Every scenario
// asserts liveness — all post-transition members complete reductions over the
// new epoch's schedule — and leak-freedom; there are no wall-clock thresholds
// to flake on. Scenarios run sequentially because the lease accounting reads
// the process-global pool counters.
func TestChaosChurnScenarios(t *testing.T) {
	const (
		dim  = 48
		size = 3
	)
	type scenario struct {
		name      string
		victim    collective.RankID // rank to crash and replace; -1 joins instead
		wantSize  int
		wantRanks int
	}
	scenarios := []scenario{
		// A non-coordinator rank dies and is replaced in one transition.
		{name: "crash-replace", victim: 1, wantSize: size, wantRanks: size},
		// A fresh member joins while every rank is mid-reduction.
		{name: "join-under-load", victim: -1, wantSize: size + 1, wantRanks: size + 1},
		// The coordinator (lowest live rank) dies; the transition must
		// re-elect before it can drain, transfer state, and commit.
		{name: "coordinator-kill", victim: 0, wantSize: size, wantRanks: size},
	}
	transports := []struct {
		name string
		opts func(block int) []collective.Option
	}{
		{name: "inproc", opts: func(int) []collective.Option { return nil }},
		{name: "tcp", opts: func(block int) []collective.Option {
			// Each subtest gets its own port block; an epoch transition
			// advances the world's internal cursor past basePort+size, so
			// leave headroom between blocks.
			return []collective.Option{
				collective.WithTransport(collective.TCP),
				collective.WithBasePort(40200 + block*32),
				collective.WithDialRetry(5 * time.Second),
			}
		}},
	}
	seeds := []int64{3, 17}

	block := 0
	for _, sc := range scenarios {
		for _, tp := range transports {
			for _, seed := range seeds {
				name := fmt.Sprintf("%s/%s/seed=%d", sc.name, tp.name, seed)
				opts := append(tp.opts(block), chaosChurnFaults(seed)...)
				block++
				t.Run(name, func(t *testing.T) {
					runChurnScenario(t, dim, size, sc.victim, sc.wantSize, sc.wantRanks, opts)
				})
			}
		}
	}
}

// chaosChurnFaults builds the seed-varied fault options every churn scenario
// runs under: mildly delaying links (so seeds genuinely change message
// interleavings) and deadline-based failure detection.
func chaosChurnFaults(seed int64) []collective.Option {
	return []collective.Option{
		collective.WithFaults(collective.FaultScenario{
			Name: "churn-chaos",
			Seed: seed,
			Default: collective.FaultLinkRule{
				DelayProb: 0.2,
				DelayMin:  100 * time.Microsecond,
				DelayMax:  2 * time.Millisecond,
			},
		}),
		collective.WithPeerDeadline(500 * time.Millisecond),
	}
}

// runChurnScenario executes one churn shape against a fresh world: start a
// reduce loop per founding rank, inject the scripted change (crash+Replace or
// Join), and require every member of the committed epoch to reduce over the
// new schedule.
func runChurnScenario(t *testing.T, dim, size int, victim collective.RankID, wantSize, wantRanks int, opts []collective.Option) {
	before := tensor.ReadPoolStats()
	w, err := collective.NewWorld(size, opts...)
	if err != nil {
		t.Fatalf("world: %v", err)
	}

	params := []float64{1.5, -2.25, 4}
	epochCh := make(chan struct{})
	w.OnMembershipChange(func(collective.Epoch) { close(epochCh) })

	var sawWant sync.WaitGroup
	sawWant.Add(wantRanks)
	var loops sync.WaitGroup
	for r := 0; r < size; r++ {
		n := w.Node(r)
		n.SetStateProvider(func() []float64 { return append([]float64(nil), params...) })
		red, err := n.Reducer(dim)
		if err != nil {
			t.Fatalf("reducer %d: %v", r, err)
		}
		isVictim := victim >= 0 && n.ID() == victim
		loops.Add(1)
		go func() {
			defer loops.Done()
			if isVictim {
				// The victim reduces until its crash error, then stops like
				// a dead process would.
				grad := make(tensor.Vector, dim)
				for {
					res, err := red.Reduce(context.Background(), grad)
					if err != nil {
						return
					}
					tensor.PutVector(res.Sum)
				}
			}
			reduceLoop(t, red, dim, wantRanks, epochCh, &sawWant)
		}()
	}

	time.Sleep(10 * time.Millisecond) // let a few rounds run

	var joiner *collective.Node
	if victim >= 0 {
		w.FaultInjector().Crash(int(victim))
		awaitDown(t, w, victim)
		joiner, err = w.Replace(victim, "replacement")
		if err != nil {
			t.Fatalf("Replace(%d): %v", victim, err)
		}
	} else {
		joiner, err = w.Join("joiner")
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	if got := len(joiner.InitialState()); got != len(params) {
		t.Fatalf("joiner adopted %d state elements, want %d", got, len(params))
	}
	red, err := joiner.Reducer(dim)
	if err != nil {
		t.Fatalf("joiner reducer: %v", err)
	}
	loops.Add(1)
	go func() {
		defer loops.Done()
		reduceLoop(t, red, dim, wantRanks, epochCh, &sawWant)
	}()

	waitDone(t, &sawWant, 20*time.Second, "not every member reduced over the new schedule")
	if got := w.Size(); got != wantSize {
		t.Fatalf("world size after churn = %d, want %d", got, wantSize)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	loops.Wait()
	if leaked := tensor.ReadPoolStats().OutstandingSince(before); leaked != 0 {
		t.Fatalf("%d pool leases leaked", leaked)
	}
}

// awaitDown blocks until the world's health view marks the victim down.
func awaitDown(t *testing.T, w *collective.World, victim collective.RankID) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, p := range w.Peers() {
			if p.ID == victim && !p.Up {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("health view never marked the victim down")
}

// waitDone waits for wg with a deadline, failing the test on timeout.
func waitDone(t *testing.T, wg *sync.WaitGroup, d time.Duration, msg string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal(msg)
	}
}
