package main

import (
	"io"
	"testing"
)

// TestChaosExampleSmoke runs the degraded-cluster example end to end: the
// survivors must finish training under the scripted crash and the health
// view must report the dead rank.
func TestChaosExampleSmoke(t *testing.T) {
	if err := run(io.Discard); err != nil {
		t.Fatal(err)
	}
}
