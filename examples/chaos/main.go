// Chaos: eager-SGD training on a degraded cluster, through the public API.
//
// Four ranks train a linear model with solo partial collectives while a
// deterministic fault injector abuses the network — every link delays and
// occasionally reorders messages — and rank 2 is scripted to crash after its
// third step. With a peer deadline configured, the survivors detect the
// crash, drop the dead rank from the participant set, and finish training;
// the world's health view shows who died and why.
//
// Run with: go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"eagersgd/collective"
	"eagersgd/tensor"
)

const (
	ranks     = 4
	dim       = 8
	steps     = 6
	crashRank = 2
	crashStep = 3
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	scenario := collective.FaultScenario{
		Name: "lossy-cluster",
		Seed: 42,
		Default: collective.FaultLinkRule{
			DelayProb: 0.4,
			DelayMin:  200 * time.Microsecond,
			DelayMax:  2 * time.Millisecond,
			Reorder:   0.1,
		},
		CrashAtStep:   map[int]int{crashRank: crashStep},
		SignalCrashes: true, // survivors get the TCP-reset analogue
	}

	world, err := collective.NewWorld(ranks,
		collective.WithMode(collective.Solo),
		collective.WithFaults(scenario),
		collective.WithPeerDeadline(2*time.Second),
	)
	if err != nil {
		return err
	}
	defer world.Close()
	inj := world.FaultInjector()
	fmt.Fprintf(out, "scenario: %s\n\n", scenario)

	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		reducer, err := world.Node(r).Reducer(dim)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(r int, red collective.Reducer) {
			defer wg.Done()
			grad := make(tensor.Vector, dim)
			for s := 0; s < steps; s++ {
				for i := range grad {
					grad[i] = float64(r + 1)
				}
				res, err := red.Reduce(context.Background(), grad)
				if err != nil {
					mu.Lock()
					fmt.Fprintf(out, "rank %d step %d: stopped (%v)\n", r, s, err)
					mu.Unlock()
					return
				}
				mu.Lock()
				fmt.Fprintf(out, "rank %d step %d: round %d, %d/%d fresh contributions, included=%v\n",
					r, s, res.Round, res.ActiveRanks, res.Ranks, res.Included)
				mu.Unlock()
				tensor.PutVector(res.Sum)
				inj.AdvanceStep(r) // crash-at-step scripts fire here
			}
		}(r, reducer)
	}
	wg.Wait()

	fmt.Fprintln(out, "\ncluster health after the run:")
	crashedSeen := false
	for _, p := range world.Peers() {
		if p.Up {
			fmt.Fprintf(out, "  rank %d: up\n", p.Rank)
		} else {
			fmt.Fprintf(out, "  rank %d: DOWN (%v)\n", p.Rank, p.Err)
			crashedSeen = crashedSeen || p.Rank == crashRank
		}
	}
	if !crashedSeen {
		return fmt.Errorf("health view did not report the scripted crash of rank %d", crashRank)
	}
	return nil
}
