// Quickstart: the smallest end-to-end use of partial collectives through the
// public API.
//
// Four "processes" (goroutines over the in-process transport) contribute a
// gradient-like vector. One of them is artificially slow. With a solo
// allreduce the fast ranks complete immediately without it; the slow rank's
// contribution is folded into the next round as a stale gradient — the core
// mechanism of eager-SGD.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"eagersgd"
)

func main() {
	const ranks = 4
	const dim = 4

	world, err := eagersgd.NewWorld(ranks, eagersgd.WithMode(eagersgd.Solo))
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	reducers := make([]eagersgd.Reducer, ranks)
	for r := 0; r < ranks; r++ {
		red, err := world.Node(r).Reducer(dim)
		if err != nil {
			log.Fatal(err)
		}
		reducers[r] = red
		defer red.Close()
	}

	runRound := func(round int, slowRank int, slowDelay time.Duration) {
		fmt.Printf("--- round %d (rank %d delayed %v) ---\n", round, slowRank, slowDelay)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if r == slowRank {
					time.Sleep(slowDelay)
				}
				grad := eagersgd.NewVector(dim)
				grad.Fill(float64(r + 1)) // rank r contributes r+1 everywhere
				start := time.Now()
				res, err := reducers[r].Reduce(context.Background(), grad)
				if err != nil {
					panic(err)
				}
				mu.Lock()
				fmt.Printf("rank %d: latency %8v  included=%-5v  active=%d  result=%v\n",
					r, time.Since(start).Round(time.Microsecond), res.Included, res.ActiveRanks, res.Sum)
				mu.Unlock()
			}(r)
		}
		wg.Wait()
	}

	// Round 0: rank 3 is slow; the solo allreduce completes without it.
	runRound(0, 3, 50*time.Millisecond)
	// Round 1: everyone is fast; rank 3's stale gradient from round 0 is
	// folded in, so nothing is ever lost.
	runRound(1, -1, 0)

	fmt.Println("\nEvery rank saw the same result per round, fast ranks never waited for the slow one,")
	fmt.Println("and the slow rank's gradient arrived one round later as a stale contribution.")
}
