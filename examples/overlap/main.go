// Overlapped bucketed training: the same multi-layer image workload run with
// the classic serial exchange (full backward pass, then one fused allreduce)
// and with the bucketed exchange (train.Spec.Overlap — layer-aligned buckets
// are submitted as the backward pass produces them, so the tail of backprop
// overlaps the head of communication, and each bucket's averaged result is
// applied as it lands). The two runs reach the same kind of loss; the
// overlapped one spends less wall-clock per step once communication is no
// longer serialized behind compute.
//
// Run with: go run ./examples/overlap
package main

import (
	"fmt"
	"log"
	"os"

	"eagersgd/train"
)

func main() {
	if err := run(os.Stdout, 4, 40); err != nil {
		log.Fatal(err)
	}
}

// run executes the comparison with the given scale and prints the table; the
// smoke test drives it with a tiny configuration.
func run(w *os.File, ranks, steps int) error {
	workload := train.Images(train.ImagesConfig{
		Classes: 8, Dim: 48, Hidden: 96, Samples: 640, Batch: 8,
	})
	runOne := func(name string, overlap bool) (*train.Result, error) {
		return train.Run(train.Spec{
			Name:        name,
			Ranks:       ranks,
			Steps:       steps,
			Workload:    workload,
			Variant:     train.SynchSGD(),
			Overlap:     overlap,
			BucketElems: 4096, // coalesce small layers into ~4Ki-element fusion buckets
			Seed:        7,
		})
	}

	serial, err := runOne("serial exchange", false)
	if err != nil {
		return err
	}
	overlapped, err := runOne("overlapped buckets", true)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-22s %12s %14s %16s\n", "exchange", "steps/s", "train time", "final val loss")
	for _, r := range []*train.Result{serial, overlapped} {
		fmt.Fprintf(w, "%-22s %12.2f %14v %16.4f\n", r.Name, r.Throughput, r.TrainingTime.Round(1e6), r.Loss)
	}
	fmt.Fprintf(w, "\noverlap step-time speedup: %.2fx (identical updates — the overlap only moves communication under backprop)\n",
		overlapped.Throughput/serial.Throughput)
	return nil
}
