package main

import (
	"os"
	"testing"
)

// TestOverlapExampleSmoke runs the example end to end at a tiny scale: both
// the serial and the overlapped configuration must complete without error.
func TestOverlapExampleSmoke(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run(devnull, 2, 6); err != nil {
		t.Fatal(err)
	}
}
