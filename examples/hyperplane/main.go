// Hyperplane regression with eager-SGD vs synchronous SGD (the workload of
// §6.2.1, Fig. 10): 8 ranks train a one-layer MLP on a synthetic hyperplane
// while one random rank per step suffers an injected delay. The example
// prints the throughput and final validation loss of both variants — eager
// SGD should be noticeably faster at an equivalent loss.
//
// Run with: go run ./examples/hyperplane
package main

import (
	"fmt"
	"log"

	"eagersgd/internal/comm"
	"eagersgd/internal/core"
	"eagersgd/internal/data"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/nn"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/partial"
)

func main() {
	const (
		ranks     = 8
		dim       = 128
		batch     = 16
		steps     = 60
		injection = 300 // paper milliseconds injected on one random rank per step
	)
	clock := imbalance.ScaledClock(0.004) // replay paper milliseconds at 0.4% of real time

	full := data.Hyperplane(dim, 2048, 0.05, 7)
	train := &data.RegressionDataset{Inputs: full.Inputs[:1792], Targets: full.Targets[:1792], Coefficients: full.Coefficients}
	eval := &data.RegressionDataset{Inputs: full.Inputs[1792:], Targets: full.Targets[1792:], Coefficients: full.Coefficients}

	run := func(name string, eager bool) *core.RunResult {
		res, err := core.Run(core.RunConfig{
			Name:      name,
			Size:      ranks,
			Steps:     steps,
			FinalSync: true,
			Build: func(rank int, c *comm.Communicator) (*core.Trainer, error) {
				net := nn.NewNetwork(nn.MSE{}, nn.NewDense(dim, 1))
				task := core.NewRegressionTask("hyperplane", net, train, eval, batch, rank, ranks, 11)
				var ex core.GradientExchanger
				syncEvery := 0
				if eager {
					ex = core.NewEagerExchanger(c, task.NumParams(), partial.Solo, 1)
					syncEvery = 20
				} else {
					ex = core.NewSynchExchanger(c, core.StyleDeep500, 4)
				}
				return core.NewTrainer(core.Config{
					Comm:            c,
					Task:            task,
					Exchanger:       ex,
					Optimizer:       optimizer.NewSGD(0.05),
					Injector:        imbalance.RandomSubset{Size: ranks, K: 1, Amount: injection, Seed: 3},
					Clock:           clock,
					BaseStepPaperMs: 195,
					SyncEverySteps:  syncEvery,
				})
			},
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return res
	}

	synch := run("synch-SGD (Deep500)", false)
	eager := run("eager-SGD (solo)", true)

	fmt.Printf("%-22s %12s %14s %16s\n", "variant", "steps/s", "train time", "final val loss")
	for _, r := range []*core.RunResult{synch, eager} {
		fmt.Printf("%-22s %12.2f %14v %16.4f\n", r.Name, r.Throughput, r.TrainingTime.Round(1e6), r.Final.Loss)
	}
	fmt.Printf("\neager-SGD speedup over synch-SGD: %.2fx (paper reports 1.75x at 300 ms injection)\n",
		eager.Throughput/synch.Throughput)
}
