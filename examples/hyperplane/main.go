// Hyperplane regression with eager-SGD vs synchronous SGD (the workload of
// §6.2.1, Fig. 10): 8 ranks train a one-layer MLP on a synthetic hyperplane
// while one random rank per step suffers an injected delay. The example
// prints the throughput and final validation loss of both variants — eager
// SGD should be noticeably faster at an equivalent loss.
//
// Run with: go run ./examples/hyperplane
package main

import (
	"fmt"
	"log"

	"eagersgd/train"
)

func main() {
	const (
		ranks     = 8
		steps     = 60
		injection = 300 // paper milliseconds injected on one random rank per step
	)
	workload := train.Hyperplane(train.HyperplaneConfig{Dim: 128, Samples: 2048, Batch: 16})

	run := func(v train.Variant) *train.Result {
		res, err := train.Run(train.Spec{
			Ranks:      ranks,
			Steps:      steps,
			Workload:   workload,
			Variant:    v,
			Imbalance:  train.RandomDelays(1, injection),
			ClockScale: 0.004, // replay paper milliseconds at 0.4% of real time
			BaseStepMs: 195,
			Seed:       7,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.Name, err)
		}
		return res
	}

	synch := run(train.SynchDeep500())
	eager := run(train.EagerSolo(20))

	fmt.Printf("%-22s %12s %14s %16s\n", "variant", "steps/s", "train time", "final val loss")
	for _, r := range []*train.Result{synch, eager} {
		fmt.Printf("%-22s %12.2f %14v %16.4f\n", r.Name, r.Throughput, r.TrainingTime.Round(1e6), r.Loss)
	}
	fmt.Printf("\neager-SGD speedup over synch-SGD: %.2fx (paper reports 1.75x at 300 ms injection)\n",
		eager.Throughput/synch.Throughput)
}
