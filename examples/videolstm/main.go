// Video classification with an LSTM under inherent load imbalance (the
// workload of §2.1 and §6.3, Fig. 13): sequences have UCF101-shaped variable
// lengths, so per-batch compute cost differs across ranks at every step
// without any injected delay. The example compares synchronous SGD with
// eager-SGD using majority allreduce — the variant the paper recommends for
// severe, inherent imbalance — and prints throughput and test accuracy.
//
// Run with: go run ./examples/videolstm
package main

import (
	"fmt"
	"log"

	"eagersgd/internal/comm"
	"eagersgd/internal/core"
	"eagersgd/internal/data"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/nn"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/partial"
)

func main() {
	const (
		ranks   = 4
		classes = 5
		featDim = 8
		hidden  = 16
		batch   = 4
		steps   = 50
	)
	clock := imbalance.ScaledClock(0.01)
	costModel := &imbalance.SequenceCostModel{BaseMs: 20, PerUnitMs: 2}

	full := data.Sequences(data.SequenceConfig{
		Classes: classes, FeatDim: featDim, Samples: 300, Noise: 0.3,
		Lengths: data.UCF101LengthDistribution{MinFrames: 5, MaxFrames: 60, Median: 14, Sigma: 0.5},
		Seed:    5,
	})
	train := &data.SequenceDataset{Sequences: full.Sequences[:260], Labels: full.Labels[:260], Classes: classes, FeatDim: featDim}
	eval := &data.SequenceDataset{Sequences: full.Sequences[260:], Labels: full.Labels[260:], Classes: classes, FeatDim: featDim}

	run := func(name string, build func(c *comm.Communicator, n int) core.GradientExchanger, syncEvery int) *core.RunResult {
		res, err := core.Run(core.RunConfig{
			Name:      name,
			Size:      ranks,
			Steps:     steps,
			FinalSync: true,
			Build: func(rank int, c *comm.Communicator) (*core.Trainer, error) {
				model := nn.NewLSTMClassifier(featDim, hidden, classes)
				task := core.NewSequenceTask("video", model, train, eval, batch, rank, ranks, 13)
				return core.NewTrainer(core.Config{
					Comm:           c,
					Task:           task,
					Exchanger:      build(c, task.NumParams()),
					Optimizer:      optimizer.NewSGD(0.08),
					Clock:          clock,
					CostModel:      costModel,
					SyncEverySteps: syncEvery,
				})
			},
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return res
	}

	synch := run("synch-SGD (Horovod)", func(c *comm.Communicator, n int) core.GradientExchanger {
		return core.NewSynchExchanger(c, core.StyleHorovod, 0)
	}, 0)
	majority := run("eager-SGD (majority)", func(c *comm.Communicator, n int) core.GradientExchanger {
		return core.NewEagerExchanger(c, n, partial.Majority, 13)
	}, 10)
	solo := run("eager-SGD (solo)", func(c *comm.Communicator, n int) core.GradientExchanger {
		return core.NewEagerExchanger(c, n, partial.Solo, 13)
	}, 10)

	fmt.Printf("%-22s %12s %14s %10s %10s\n", "variant", "steps/s", "train time", "top-1", "top-5")
	for _, r := range []*core.RunResult{synch, majority, solo} {
		fmt.Printf("%-22s %12.2f %14v %9.1f%% %9.1f%%\n",
			r.Name, r.Throughput, r.TrainingTime.Round(1e6), 100*r.Final.Top1, 100*r.Final.Top5)
	}
	fmt.Printf("\nmajority speedup %.2fx, solo speedup %.2fx over synch-SGD (paper: 1.27x and 1.64x, with solo losing accuracy)\n",
		majority.Throughput/synch.Throughput, solo.Throughput/synch.Throughput)
}
