// Video classification with an LSTM under inherent load imbalance (the
// workload of §2.1 and §6.3, Fig. 13): sequences have UCF101-shaped variable
// lengths, so per-batch compute cost differs across ranks at every step
// without any injected delay. The example compares synchronous SGD with
// eager-SGD using majority allreduce — the variant the paper recommends for
// severe, inherent imbalance — and prints throughput and test accuracy.
//
// Run with: go run ./examples/videolstm
package main

import (
	"fmt"
	"log"

	"eagersgd/train"
)

func main() {
	const (
		ranks = 4
		steps = 50
	)
	workload := train.Video(train.VideoConfig{
		Classes: 5, FeatDim: 8, Hidden: 16, Samples: 300, Batch: 4,
		MinFrames: 5, MaxFrames: 60, MedianFrames: 14,
		BaseMs: 20, PerFrameMs: 2, // inherent-imbalance cost model
	})

	run := func(v train.Variant) *train.Result {
		res, err := train.Run(train.Spec{
			Ranks:      ranks,
			Steps:      steps,
			Workload:   workload,
			Variant:    v,
			ClockScale: 0.01,
			Seed:       13,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.Name, err)
		}
		return res
	}

	synch := run(train.SynchHorovod())
	majority := run(train.EagerMajority(10))
	solo := run(train.EagerSolo(10))

	fmt.Printf("%-22s %12s %14s %10s %10s\n", "variant", "steps/s", "train time", "top-1", "top-5")
	for _, r := range []*train.Result{synch, majority, solo} {
		fmt.Printf("%-22s %12.2f %14v %9.1f%% %9.1f%%\n",
			r.Name, r.Throughput, r.TrainingTime.Round(1e6), 100*r.Top1, 100*r.Top5)
	}
	fmt.Printf("\nmajority speedup %.2fx, solo speedup %.2fx over synch-SGD (paper: 1.27x and 1.64x, with solo losing accuracy)\n",
		majority.Throughput/synch.Throughput, solo.Throughput/synch.Throughput)
}
