package main

import (
	"io"
	"testing"
)

// TestElasticExampleSmoke runs the reconfiguration example end to end: the
// world must grow under load, survive the runtime crash, commit the
// replacement epoch, and shut down cleanly.
func TestElasticExampleSmoke(t *testing.T) {
	if err := run(io.Discard); err != nil {
		t.Fatal(err)
	}
}
