// Elastic: membership reconfiguration while training runs, through the
// public API.
//
// Three founding ranks reduce synchronously while the world is reconfigured
// under them twice: first a fresh member joins (3 → 4), then a scripted
// crash kills one rank and a replacement takes its dense slot. Each change
// is one epoch transition — drain, state transfer to the newcomer, re-mint,
// commit — and the training loops never rebuild their reducers: a reducer
// minted through Node.Reducer is an epoch-stable handle that follows the
// member across epochs. Joiners adopt the model state from live survivors,
// so they start from the current parameters, not from scratch.
//
// Run with: go run ./examples/elastic
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"eagersgd/collective"
	"eagersgd/tensor"
)

const (
	founders  = 3
	dim       = 8
	victim    = collective.RankID(1)
	finalSize = 4 // founders + joiner + replacement - victim
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// An empty scenario arms the injector without scripting any faults; the
	// crash below is triggered at runtime. The peer deadline is the failure
	// detector that lets survivors notice the death.
	world, err := collective.NewWorld(founders,
		collective.WithFaults(collective.FaultScenario{Name: "elastic-demo", Seed: 7}),
		collective.WithPeerDeadline(500*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer world.Close()

	var mu sync.Mutex
	printf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(out, format, args...)
	}

	// Every epoch commit fires the observers; the broadcast channel below is
	// what parks a training loop whose reduce failed mid-transition.
	epochChanged := make(chan struct{})
	world.OnMembershipChange(func(e collective.Epoch) {
		printf("epoch %d committed: %d members\n", e.Number, len(e.Members))
		mu.Lock()
		close(epochChanged)
		epochChanged = make(chan struct{})
		mu.Unlock()
	})
	waitEpoch := func() <-chan struct{} {
		mu.Lock()
		defer mu.Unlock()
		return epochChanged
	}

	// The model state joiners adopt: in a real trainer this is the parameter
	// vector; the state provider hands the transfer protocol a snapshot.
	params := []float64{0.5, -1.25, 2}

	// One training loop per member. Loops run until the world closes; a
	// reduce that fails because a peer died parks until the repairing epoch
	// commits (or shutdown), then continues on the re-minted schedule.
	shutdown := make(chan struct{})
	sawFinal := make(chan struct{}, 16)
	var loops sync.WaitGroup
	train := func(n *collective.Node, red collective.Reducer) {
		defer loops.Done()
		grad := make(tensor.Vector, dim)
		for i := range grad {
			grad[i] = 1
		}
		signalled := false
		for {
			wait := waitEpoch()
			res, err := red.Reduce(context.Background(), grad)
			if err != nil {
				if errors.Is(err, collective.ErrReducerClosed) {
					return
				}
				if world.FaultInjector().Crashed(n.Rank()) || !stillMember(world, n) {
					printf("member %d: stopped (%v)\n", n.ID(), err)
					return
				}
				select {
				case <-wait: // a peer died mid-collective; the repair committed
					continue
				case <-shutdown: // close racing the failed reduce: no repair coming
					return
				}
			}
			if !signalled && res.Ranks == finalSize {
				signalled = true
				sawFinal <- struct{}{}
			}
			tensor.PutVector(res.Sum)
		}
	}
	start := func(n *collective.Node) error {
		n.SetStateProvider(func() []float64 { return append([]float64(nil), params...) })
		red, err := n.Reducer(dim)
		if err != nil {
			return err
		}
		loops.Add(1)
		go train(n, red)
		return nil
	}
	for r := 0; r < founders; r++ {
		if err := start(world.Node(r)); err != nil {
			return err
		}
	}
	time.Sleep(5 * time.Millisecond) // let the founding epoch reduce a little

	// Grow: a fresh member joins mid-run and adopts the transferred state.
	joiner, err := world.Join("worker-4.example:7777")
	if err != nil {
		return fmt.Errorf("join: %w", err)
	}
	printf("joiner got ID %d, dense rank %d, %d state elements\n",
		joiner.ID(), joiner.Rank(), len(joiner.InitialState()))
	if err := start(joiner); err != nil {
		return err
	}

	// Repair: kill a member at runtime, wait for the failure detector, and
	// replace it. The replacement takes the victim's dense slot but gets a
	// fresh stable ID — identities are never reused.
	world.FaultInjector().Crash(int(victim))
	awaitDown(world, victim)
	printf("rank %d is down; replacing\n", victim)
	repl, err := world.Replace(victim, "worker-5.example:7777")
	if err != nil {
		return fmt.Errorf("replace: %w", err)
	}
	printf("replacement got ID %d, dense rank %d, %d state elements\n",
		repl.ID(), repl.Rank(), len(repl.InitialState()))
	if err := start(repl); err != nil {
		return err
	}

	// Wait until every live member has reduced over the final 4-rank
	// schedule, then shut down; Close joins every loop leak-free.
	for seen := 0; seen < finalSize; seen++ {
		select {
		case <-sawFinal:
		case <-time.After(30 * time.Second):
			return errors.New("members never reduced over the final schedule")
		}
	}
	printf("\nfinal membership (epoch %d):\n", world.Membership().Number)
	for _, p := range world.Peers() {
		printf("  ID %d at dense rank %d (up=%v)\n", p.ID, p.Rank, p.Up)
	}
	close(shutdown)
	if err := world.Close(); err != nil {
		return err
	}
	loops.Wait()
	return nil
}

// stillMember reports whether the node's stable ID is in the current epoch.
func stillMember(w *collective.World, n *collective.Node) bool {
	for _, m := range w.Membership().Members {
		if m.ID == n.ID() {
			return true
		}
	}
	return false
}

// awaitDown polls the health view until the victim is marked down.
func awaitDown(w *collective.World, victim collective.RankID) {
	for {
		for _, p := range w.Peers() {
			if p.ID == victim && !p.Up {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}
