// Cloud-style training with system-caused imbalance (the setting of §2.3 and
// §6.2.2): an image-classification stand-in is trained on 16 ranks while a
// few random ranks per step suffer cloud-like delays drawn from the Fig. 4
// runtime distribution. The example compares the two synchronous baselines
// (Deep500-style and Horovod-style) against eager-SGD with solo allreduce.
//
// Run with: go run ./examples/cloudtrain
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eagersgd/internal/comm"
	"eagersgd/internal/core"
	"eagersgd/internal/data"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/nn"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/partial"
)

// cloudInjector delays a few random ranks per step by the excess of a sample
// from the cloud runtime distribution over its minimum (the "noise tail" of
// Fig. 4).
type cloudInjector struct {
	size, k int
	dist    imbalance.Distribution
	seed    int64
}

func (c cloudInjector) Name() string { return "cloud-noise" }

func (c cloudInjector) Delay(step, rank int) float64 {
	rng := rand.New(rand.NewSource(c.seed ^ int64(step)*104729))
	perm := rng.Perm(c.size)
	for i := 0; i < c.k; i++ {
		if perm[i] == rank {
			return c.dist.Sample(rng) - c.dist.MinMs
		}
	}
	return 0
}

func main() {
	const (
		ranks   = 16
		classes = 8
		dim     = 24
		hidden  = 24
		batch   = 8
		steps   = 50
	)
	clock := imbalance.ScaledClock(0.004)
	injector := cloudInjector{size: ranks, k: 2, dist: imbalance.CloudBatchRuntime(), seed: 17}

	full := data.Blobs(classes, dim, 160, 0.6, 23)
	cut := full.Len() - full.Len()/8
	train := &data.ClassificationDataset{Inputs: full.Inputs[:cut], Labels: full.Labels[:cut], Classes: classes}
	eval := &data.ClassificationDataset{Inputs: full.Inputs[cut:], Labels: full.Labels[cut:], Classes: classes}

	run := func(name string, build func(c *comm.Communicator, n int) core.GradientExchanger, syncEvery int) *core.RunResult {
		res, err := core.Run(core.RunConfig{
			Name:      name,
			Size:      ranks,
			Steps:     steps,
			FinalSync: true,
			Build: func(rank int, c *comm.Communicator) (*core.Trainer, error) {
				net := nn.NewNetwork(nn.SoftmaxCrossEntropy{},
					nn.NewDense(dim, hidden), nn.NewTanh(hidden), nn.NewDense(hidden, classes))
				task := core.NewClassificationTask("cloud-images", net, train, eval, batch, rank, ranks, 29)
				return core.NewTrainer(core.Config{
					Comm:            c,
					Task:            task,
					Exchanger:       build(c, task.NumParams()),
					Optimizer:       optimizer.NewSGD(0.1),
					Injector:        injector,
					Clock:           clock,
					BaseStepPaperMs: 400, // the fixed compute floor of the Fig. 4 distribution
					SyncEverySteps:  syncEvery,
				})
			},
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return res
	}

	deep500 := run("synch-SGD (Deep500)", func(c *comm.Communicator, n int) core.GradientExchanger {
		return core.NewSynchExchanger(c, core.StyleDeep500, 4)
	}, 0)
	horovod := run("synch-SGD (Horovod)", func(c *comm.Communicator, n int) core.GradientExchanger {
		return core.NewSynchExchanger(c, core.StyleHorovod, 0)
	}, 0)
	eager := run("eager-SGD (solo)", func(c *comm.Communicator, n int) core.GradientExchanger {
		return core.NewEagerExchanger(c, n, partial.Solo, 31)
	}, 10)

	fmt.Printf("%-22s %12s %14s %10s\n", "variant", "steps/s", "train time", "top-1")
	for _, r := range []*core.RunResult{deep500, horovod, eager} {
		fmt.Printf("%-22s %12.2f %14v %9.1f%%\n", r.Name, r.Throughput, r.TrainingTime.Round(1e6), 100*r.Final.Top1)
	}
	fmt.Printf("\neager-SGD speedup: %.2fx vs Deep500, %.2fx vs Horovod (paper: 1.23-1.25x and 1.14-1.22x on ResNet-50)\n",
		eager.Throughput/deep500.Throughput, eager.Throughput/horovod.Throughput)
}
