// Cloud-style training with system-caused imbalance (the setting of §2.3 and
// §6.2.2): an image-classification stand-in is trained on 16 ranks while a
// few random ranks per step suffer cloud-like delays drawn from the Fig. 4
// runtime distribution. The example compares the two synchronous baselines
// (Deep500-style and Horovod-style) against eager-SGD with solo allreduce.
//
// Run with: go run ./examples/cloudtrain
package main

import (
	"fmt"
	"log"

	"eagersgd/train"
)

func main() {
	const (
		ranks = 16
		steps = 50
	)
	workload := train.Images(train.ImagesConfig{Classes: 8, Dim: 24, Hidden: 24, Samples: 160, Batch: 8})

	run := func(v train.Variant) *train.Result {
		res, err := train.Run(train.Spec{
			Ranks:      ranks,
			Steps:      steps,
			Workload:   workload,
			Variant:    v,
			Imbalance:  train.CloudNoise(2), // the multi-tenant noise tail of Fig. 4
			ClockScale: 0.004,
			BaseStepMs: 400, // the fixed compute floor of the Fig. 4 distribution
			Seed:       17,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.Name, err)
		}
		return res
	}

	deep500 := run(train.SynchDeep500())
	horovod := run(train.SynchHorovod())
	eager := run(train.EagerSolo(10))

	fmt.Printf("%-22s %12s %14s %10s\n", "variant", "steps/s", "train time", "top-1")
	for _, r := range []*train.Result{deep500, horovod, eager} {
		fmt.Printf("%-22s %12.2f %14v %9.1f%%\n", r.Name, r.Throughput, r.TrainingTime.Round(1e6), 100*r.Top1)
	}
	fmt.Printf("\neager-SGD speedup: %.2fx vs Deep500, %.2fx vs Horovod (paper: 1.23-1.25x and 1.14-1.22x on ResNet-50)\n",
		eager.Throughput/deep500.Throughput, eager.Throughput/horovod.Throughput)
}
