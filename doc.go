// Package eagersgd is a from-scratch Go reproduction of "Taming Unbalanced
// Training Workloads in Deep Learning with Partial Collective Operations"
// (Li et al., PPoPP 2020): partial collective operations (solo and majority
// allreduce) built on a communication-schedule engine, the eager-SGD
// distributed training algorithm that uses them, the synchronous SGD
// baselines it is compared against, and a benchmark harness that regenerates
// every figure and table of the paper's evaluation.
//
// The public surface is organized in four packages; this root package
// re-exports the collective essentials so small programs need one import:
//
//   - eagersgd/collective — the Reducer seam (Sync, Solo, Majority,
//     Quorum(k)) and the World builder over the in-process and TCP
//     transports.
//   - eagersgd/tensor — the Vector and Matrix containers gradients travel in.
//   - eagersgd/train — declarative training runs comparing synch-SGD and
//     eager-SGD variants on the built-in stand-in workloads.
//   - eagersgd/harness — the paper's experiments (fig2 … fig13, table1,
//     scaling, quorum), each returning a rendered Report.
//
// A minimal partial-allreduce job:
//
//	w, _ := eagersgd.NewWorld(4, eagersgd.WithMode(eagersgd.Solo))
//	defer w.Close()
//	// on each rank r's goroutine:
//	red, _ := w.Node(r).Reducer(dim)
//	res, _ := red.Reduce(ctx, grad) // never waits for stragglers
//
// The engines live under internal/ (see DESIGN.md for the system inventory);
// runnable entry points are the binaries under cmd/, the examples under
// examples/, and the benchmarks in bench_test.go.
package eagersgd
