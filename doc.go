// Package eagersgd is a from-scratch Go reproduction of "Taming Unbalanced
// Training Workloads in Deep Learning with Partial Collective Operations"
// (Li et al., PPoPP 2020): partial collective operations (solo and majority
// allreduce) built on a communication-schedule engine, the eager-SGD
// distributed training algorithm that uses them, the synchronous SGD
// baselines it is compared against, and a benchmark harness that regenerates
// every figure and table of the paper's evaluation.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are the binaries under cmd/, the
// examples under examples/, and the benchmarks in bench_test.go.
package eagersgd
